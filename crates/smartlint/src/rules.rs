//! The lint rules and the per-file analysis pass.
//!
//! Every rule has a stable ID (`D1`, `D2`, `N1`, `N2`, `P1`, `H1`,
//! plus `A0` for malformed annotations), an annotation key for
//! suppression, and a path scope — rules only fire where the invariant
//! they protect actually matters. See `DESIGN.md` ("Static analysis &
//! determinism rules") for the rationale behind each rule and its tie
//! to the workspace's bit-parity guarantees.
//!
//! # Annotation grammar
//!
//! A finding is suppressed by a justification comment on the same line
//! or the line directly above:
//!
//! ```text
//! // smartlint: allow(<key>, "<why this site is sound>")
//! ```
//!
//! The reason string is mandatory and must be non-empty; a `smartlint:`
//! comment that does not parse is itself reported (rule `A0`) so a
//! typo cannot silently disable enforcement.

use serde::{Deserialize, Serialize};

use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Rule ID (`D1`, `D2`, `N1`, `N2`, `P1`, `H1`, `A0`).
    pub rule: String,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line of the violation.
    pub line: u32,
    /// Human explanation of what is wrong and how to fix it.
    pub message: String,
    /// The trimmed source line, used as the baseline matching key.
    pub excerpt: String,
    /// Whether a baseline entry covers this finding.
    pub baselined: bool,
}

/// Static description of one rule, for `--list-rules` and the docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule ID.
    pub id: &'static str,
    /// The `allow(<key>, ...)` annotation key.
    pub key: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// Every rule smartlint enforces, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D1",
        key: "unordered-iter",
        summary: "no HashMap/HashSet iteration in archsim/kernelsim/core (keyed lookups stay legal)",
    },
    RuleInfo {
        id: "D2",
        key: "nondeterminism",
        summary: "no wall-clock, ambient randomness or env-dependent values outside bench/suite timing code",
    },
    RuleInfo {
        id: "N1",
        key: "numeric-cast",
        summary: "no bare `as` numeric casts in counter/energy accounting files; use the sanctioned helpers",
    },
    RuleInfo {
        id: "N2",
        key: "float-width",
        summary: "no f32 in power/energy paths; all accounting is f64",
    },
    RuleInfo {
        id: "P1",
        key: "panic",
        summary: "unwrap()/expect()/panic! in library code requires a justification annotation",
    },
    RuleInfo {
        id: "H1",
        key: "header",
        summary: "crate roots must carry #![forbid(unsafe_code)] and #![deny(missing_docs)]",
    },
    RuleInfo {
        id: "C1",
        key: "checkpoint-write",
        summary: "no direct file writes in campaign checkpoint code; all persistence goes through the atomic temp-file+rename writer",
    },
    RuleInfo {
        id: "A0",
        key: "annotation",
        summary: "smartlint annotations must parse and carry a non-empty reason",
    },
];

/// Looks up a rule by ID.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

// ---------------------------------------------------------------------
// Path scopes
// ---------------------------------------------------------------------

/// The simulation crates whose iteration order and time sources feed
/// epoch reports and allocation decisions.
const SIM_CRATES: &[&str] = &[
    "crates/archsim/src/",
    "crates/kernelsim/src/",
    "crates/core/src/",
    "crates/telemetry/src/",
    "crates/campaign/src/",
];

/// Library crates subject to panic hygiene (P1) and determinism (D2).
/// `crates/bench` is the timing/CLI harness and exempt by design.
const LIB_CRATES: &[&str] = &[
    "crates/archsim/src/",
    "crates/kernelsim/src/",
    "crates/mcpat/src/",
    "crates/workloads/src/",
    "crates/core/src/",
    "crates/smartlint/src/",
    "crates/telemetry/src/",
    "crates/campaign/src/",
];

/// Counter/energy accounting files where every numeric `as` cast must
/// go through a sanctioned helper (N1).
const NUMERIC_FILES: &[&str] = &[
    "crates/archsim/src/counters.rs",
    "crates/archsim/src/execution.rs",
    "crates/mcpat/src/",
    "crates/core/src/estimate.rs",
];

/// Power/energy-path files where `f32` is banned outright (N2).
const POWER_FILES: &[&str] = &[
    "crates/mcpat/src/",
    "crates/core/src/objective.rs",
    "crates/kernelsim/src/stats.rs",
];

/// Checkpoint-persistence code where every file write must go through
/// the atomic temp-file+rename writer (C1): a plain `File::create` /
/// `fs::write` over the live journal tears it on a crash mid-write,
/// which is exactly the failure the campaign runner exists to survive.
const CHECKPOINT_FILES: &[&str] = &["crates/campaign/src/"];

fn in_scope(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| {
        if p.ends_with(".rs") {
            path == *p
        } else {
            path.starts_with(p)
        }
    })
}

/// Binary roots are exempt from P1/D2: a CLI may panic on bad input
/// and read clocks/args/env freely.
fn is_binary_root(path: &str) -> bool {
    path.ends_with("/main.rs") || path.contains("/src/bin/")
}

fn d1_applies(path: &str) -> bool {
    in_scope(path, SIM_CRATES)
}

fn d2_applies(path: &str) -> bool {
    in_scope(path, LIB_CRATES) && !is_binary_root(path) && path != "crates/core/src/suite.rs"
}

fn n1_applies(path: &str) -> bool {
    in_scope(path, NUMERIC_FILES)
}

fn n2_applies(path: &str) -> bool {
    in_scope(path, POWER_FILES)
}

fn p1_applies(path: &str) -> bool {
    in_scope(path, LIB_CRATES) && !is_binary_root(path)
}

fn h1_applies(path: &str) -> bool {
    path.starts_with("crates/") && path.ends_with("/src/lib.rs")
}

fn c1_applies(path: &str) -> bool {
    in_scope(path, CHECKPOINT_FILES)
}

// ---------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Annotation {
    key: String,
    line: u32,
}

/// Parses `smartlint:` comments into suppression annotations; comments
/// that mention smartlint but do not parse become `A0` findings.
fn collect_annotations(
    comments: &[Comment],
    path: &str,
    lines: &[&str],
    findings: &mut Vec<Finding>,
) -> Vec<Annotation> {
    let mut out = Vec::new();
    for c in comments {
        // Doc comments routinely *mention* the grammar (as this file
        // does); only a plain comment whose body leads with
        // `smartlint:` is an annotation.
        let text = c.text.as_str();
        if text.starts_with("///")
            || text.starts_with("//!")
            || text.starts_with("/**")
            || text.starts_with("/*!")
        {
            continue;
        }
        let body = text
            .strip_prefix("//")
            .or_else(|| text.strip_prefix("/*"))
            .unwrap_or(text)
            .trim_start();
        let Some(rest) = body.strip_prefix("smartlint:").map(str::trim) else {
            continue;
        };
        match parse_allow(rest) {
            Some(key) if RULES.iter().any(|r| r.key == key) => {
                out.push(Annotation { key, line: c.line })
            }
            Some(key) => findings.push(finding(
                "A0",
                path,
                c.line,
                lines,
                format!("unknown smartlint rule key {key:?} in annotation"),
            )),
            None => findings.push(finding(
                "A0",
                path,
                c.line,
                lines,
                "malformed smartlint annotation; expected `smartlint: allow(<key>, \"reason\")`"
                    .to_string(),
            )),
        }
    }
    out
}

/// Parses `allow(<key>, "<reason>")`, returning the key. The reason is
/// mandatory and must be a non-empty string literal.
fn parse_allow(text: &str) -> Option<String> {
    let body = text.strip_prefix("allow")?.trim_start();
    let body = body.strip_prefix('(')?;
    let close = body.rfind(')')?;
    let body = &body[..close];
    let comma = body.find(',')?;
    let key = body[..comma].trim();
    let reason = body[comma + 1..].trim();
    let reason = reason.strip_prefix('"')?.strip_suffix('"')?;
    if key.is_empty() || reason.trim().is_empty() {
        return None;
    }
    Some(key.to_string())
}

fn suppressed(annotations: &[Annotation], key: &str, line: u32) -> bool {
    annotations
        .iter()
        .any(|a| a.key == key && (a.line == line || a.line + 1 == line))
}

// ---------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------

/// Line ranges covered by `#[cfg(test)]` / `#[test]` items. Rules that
/// protect runtime accounting (D2, N1, P1) skip these: tests may time
/// themselves, cast freely in assertions and unwrap known-good values.
fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if let Some(attr_end) = match_test_attr(tokens, i) {
            // Find the item's opening brace, then its matching close.
            let mut j = attr_end;
            while j < tokens.len() && !is_punct(&tokens[j], "{") {
                j += 1;
            }
            let start_line = tokens[i].line;
            let mut depth = 0i64;
            while j < tokens.len() {
                if is_punct(&tokens[j], "{") {
                    depth += 1;
                } else if is_punct(&tokens[j], "}") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let end_line = tokens.get(j).map_or(u32::MAX, |t| t.line);
            regions.push((start_line, end_line));
            i = j.max(i) + 1;
        } else {
            i += 1;
        }
    }
    regions
}

/// If tokens at `i` start `#[cfg(test)]` or `#[test]`, returns the
/// index one past the closing `]`.
fn match_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    if !is_punct(tokens.get(i)?, "#") || !is_punct(tokens.get(i + 1)?, "[") {
        return None;
    }
    let name = tokens.get(i + 2)?;
    if name.kind != TokenKind::Ident {
        return None;
    }
    match name.text.as_str() {
        "test" if is_punct(tokens.get(i + 3)?, "]") => Some(i + 4),
        "cfg" => {
            // #[cfg(test)] exactly: cfg ( test ) ]
            if is_punct(tokens.get(i + 3)?, "(")
                && tokens.get(i + 4).is_some_and(|t| t.text == "test")
                && is_punct(tokens.get(i + 5)?, ")")
                && is_punct(tokens.get(i + 6)?, "]")
            {
                Some(i + 7)
            } else {
                None
            }
        }
        _ => None,
    }
}

fn in_test_region(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == s
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == s
}

// ---------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------

fn finding(rule: &str, path: &str, line: u32, lines: &[&str], message: String) -> Finding {
    let excerpt = lines
        .get(line.saturating_sub(1) as usize)
        .map_or("", |l| l.trim())
        .to_string();
    Finding {
        rule: rule.to_string(),
        file: path.to_string(),
        line,
        message,
        excerpt,
        baselined: false,
    }
}

/// Analyzes one file's source as if it lived at workspace-relative
/// `path` (scoping is path-driven, which is what lets the fixture
/// tests exercise every rule without touching the real tree).
pub fn analyze_source(path: &str, source: &str) -> Vec<Finding> {
    let lexed = lex(source);
    let lines: Vec<&str> = source.lines().collect();
    let mut findings = Vec::new();
    let annotations = collect_annotations(&lexed.comments, path, &lines, &mut findings);
    let regions = test_regions(&lexed.tokens);

    if d1_applies(path) {
        rule_d1(path, &lexed, &lines, &mut findings);
    }
    if d2_applies(path) {
        rule_d2(path, &lexed, &lines, &regions, &mut findings);
    }
    if n1_applies(path) {
        rule_n1(path, &lexed, &lines, &regions, &mut findings);
    }
    if n2_applies(path) {
        rule_n2(path, &lexed, &lines, &mut findings);
    }
    if p1_applies(path) {
        rule_p1(path, &lexed, &lines, &regions, &mut findings);
    }
    if h1_applies(path) {
        rule_h1(path, &lexed, &mut findings);
    }
    if c1_applies(path) {
        rule_c1(path, &lexed, &lines, &regions, &mut findings);
    }

    // Apply suppressions, dedupe to one finding per (rule, line), and
    // order by position for stable output.
    let mut kept: Vec<Finding> = Vec::new();
    for f in findings {
        let key = rule_info(&f.rule).map_or("", |r| r.key);
        if f.rule != "A0" && suppressed(&annotations, key, f.line) {
            continue;
        }
        if kept.iter().any(|k| k.rule == f.rule && k.line == f.line) {
            continue;
        }
        kept.push(f);
    }
    kept.sort_by(|a, b| (a.line, a.rule.as_str()).cmp(&(b.line, b.rule.as_str())));
    kept
}

/// D1 — unordered iteration. Collects identifiers declared with
/// `HashMap`/`HashSet` types or constructors, then flags iteration
/// method calls and `for … in` loops whose receiver is one of them.
fn rule_d1(path: &str, lexed: &Lexed, lines: &[&str], findings: &mut Vec<Finding>) {
    const ITER_METHODS: &[&str] = &[
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "into_iter",
        "into_keys",
        "into_values",
        "drain",
        "retain",
    ];
    let toks = &lexed.tokens;
    let mut names: Vec<String> = Vec::new();

    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident
            || (toks[i].text != "HashMap" && toks[i].text != "HashSet")
        {
            continue;
        }
        // Walk backwards over a path/type prefix (`std :: collections ::`,
        // `&`, `mut`, `<` of generics) to the declared name: the nearest
        // preceding `ident :` or `ident =`.
        let mut j = i;
        while j > 0 {
            let prev = &toks[j - 1];
            let skippable = is_punct(prev, ":")
                || is_punct(prev, "&")
                || is_punct(prev, "<")
                || is_ident(prev, "std")
                || is_ident(prev, "collections")
                || is_ident(prev, "mut")
                || is_ident(prev, "dyn");
            if !skippable {
                break;
            }
            j -= 1;
            if is_punct(&toks[j], ":") && j > 0 && toks[j - 1].kind == TokenKind::Ident {
                // `name : … HashMap` — a field, binding or parameter;
                // but `seg :: HashMap` is a path, not a declaration.
                let path_sep = j >= 2 && is_punct(&toks[j - 2], ":");
                if !path_sep {
                    names.push(toks[j - 1].text.clone());
                }
                break;
            }
        }
        // `name = HashMap::new()` style.
        if i >= 2 && is_punct(&toks[i - 1], "=") && toks[i - 2].kind == TokenKind::Ident {
            names.push(toks[i - 2].text.clone());
        }
    }
    names.sort();
    names.dedup();

    for i in 0..toks.len() {
        // Method-call form: `name . iter (`  /  `self . name . drain (`.
        if toks[i].kind == TokenKind::Ident
            && ITER_METHODS.contains(&toks[i].text.as_str())
            && i >= 2
            && is_punct(&toks[i - 1], ".")
            && toks[i - 2].kind == TokenKind::Ident
            && names.contains(&toks[i - 2].text)
            && toks.get(i + 1).is_some_and(|t| is_punct(t, "("))
        {
            findings.push(finding(
                "D1",
                path,
                toks[i].line,
                lines,
                format!(
                    "iteration over unordered {map} `{recv}.{m}()`: HashMap/HashSet visit order \
                     is nondeterministic and must never reach reports, serialized output or \
                     allocation decisions — use BTreeMap or a sorted Vec, or justify with \
                     `// smartlint: allow(unordered-iter, \"…\")`",
                    map = "container",
                    recv = toks[i - 2].text,
                    m = toks[i].text
                ),
            ));
        }
        // `for pat in <expr containing a map name> {`
        if is_ident(&toks[i], "for") {
            let mut j = i + 1;
            while j < toks.len() && !is_ident(&toks[j], "in") {
                j += 1;
            }
            let mut k = j + 1;
            let mut offender: Option<&Token> = None;
            while k < toks.len() && !is_punct(&toks[k], "{") {
                if toks[k].kind == TokenKind::Ident && names.contains(&toks[k].text) {
                    offender = Some(&toks[k]);
                }
                k += 1;
            }
            if let Some(t) = offender {
                findings.push(finding(
                    "D1",
                    path,
                    t.line,
                    lines,
                    format!(
                        "`for … in` over unordered container `{}`: iteration order is \
                         nondeterministic — use BTreeMap or a sorted Vec, or justify with \
                         `// smartlint: allow(unordered-iter, \"…\")`",
                        t.text
                    ),
                ));
            }
        }
    }
}

/// D2 — ambient nondeterminism: wall clocks, OS randomness, environment.
fn rule_d2(
    path: &str,
    lexed: &Lexed,
    lines: &[&str],
    regions: &[(u32, u32)],
    findings: &mut Vec<Finding>,
) {
    const BANNED: &[(&str, &str)] = &[
        ("Instant", "wall-clock time"),
        ("SystemTime", "wall-clock time"),
        ("UNIX_EPOCH", "wall-clock time"),
        ("thread_rng", "ambient randomness"),
        ("getrandom", "ambient randomness"),
        ("from_entropy", "ambient randomness"),
        ("available_parallelism", "environment-dependent parallelism"),
    ];
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test_region(regions, t.line) {
            continue;
        }
        if let Some((_, what)) = BANNED.iter().find(|(name, _)| t.text == *name) {
            findings.push(finding(
                "D2",
                path,
                t.line,
                lines,
                format!(
                    "`{}` introduces {what} into simulation code; results must be a pure \
                     function of explicit seeds and inputs (timing belongs in crates/bench \
                     or the suite harness)",
                    t.text
                ),
            ));
        }
        // `rand` as a path segment (`use rand::…`, `rand::thread_rng`).
        if t.text == "rand"
            && toks.get(i + 1).is_some_and(|n| is_punct(n, ":"))
            && toks.get(i + 2).is_some_and(|n| is_punct(n, ":"))
        {
            findings.push(finding(
                "D2",
                path,
                t.line,
                lines,
                "the `rand` crate is banned in simulation code; use the repo's seeded \
                 splitmix64/xorshift streams"
                    .to_string(),
            ));
        }
        // `env :: var/vars/var_os/args` — environment reads.
        if t.text == "env"
            && toks.get(i + 1).is_some_and(|n| is_punct(n, ":"))
            && toks.get(i + 2).is_some_and(|n| is_punct(n, ":"))
            && toks.get(i + 3).is_some_and(|n| {
                matches!(
                    n.text.as_str(),
                    "var" | "vars" | "var_os" | "args" | "args_os"
                )
            })
        {
            findings.push(finding(
                "D2",
                path,
                t.line,
                lines,
                "environment reads are banned in simulation code; thread configuration \
                 through explicit config structs"
                    .to_string(),
            ));
        }
    }
}

/// N1 — bare numeric `as` casts in accounting files.
fn rule_n1(
    path: &str,
    lexed: &Lexed,
    lines: &[&str],
    regions: &[(u32, u32)],
    findings: &mut Vec<Finding>,
) {
    const NUMERIC_TYPES: &[&str] = &[
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
        "f32", "f64",
    ];
    let toks = &lexed.tokens;
    for i in 0..toks.len().saturating_sub(1) {
        if is_ident(&toks[i], "as")
            && toks[i + 1].kind == TokenKind::Ident
            && NUMERIC_TYPES.contains(&toks[i + 1].text.as_str())
            && !in_test_region(regions, toks[i].line)
        {
            findings.push(finding(
                "N1",
                path,
                toks[i].line,
                lines,
                format!(
                    "bare `as {}` cast in a counter/energy accounting file: lossy conversions \
                     silently corrupt totals — use `round_count`/`ceil_count`/`count_to_f64` \
                     (archsim) or justify with `// smartlint: allow(numeric-cast, \"…\")`",
                    toks[i + 1].text
                ),
            ));
        }
    }
}

/// N2 — `f32` anywhere in power/energy paths.
fn rule_n2(path: &str, lexed: &Lexed, lines: &[&str], findings: &mut Vec<Finding>) {
    for t in &lexed.tokens {
        let is_f32_type = t.kind == TokenKind::Ident && t.text == "f32";
        let is_f32_literal = t.kind == TokenKind::Number && t.text.ends_with("f32");
        if is_f32_type || is_f32_literal {
            findings.push(finding(
                "N2",
                path,
                t.line,
                lines,
                "f32 in a power/energy path: all power and energy accounting is f64 so \
                 accumulated error stays below measurement noise"
                    .to_string(),
            ));
        }
    }
}

/// P1 — panic hygiene in library code.
fn rule_p1(
    path: &str,
    lexed: &Lexed,
    lines: &[&str],
    regions: &[(u32, u32)],
    findings: &mut Vec<Finding>,
) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || in_test_region(regions, t.line) {
            continue;
        }
        // `.unwrap()` / `.expect(` — method calls only, so
        // `unwrap_or_else` and local fields named `expect` don't match.
        let is_method = matches!(t.text.as_str(), "unwrap" | "expect")
            && i >= 1
            && is_punct(&toks[i - 1], ".")
            && toks.get(i + 1).is_some_and(|n| is_punct(n, "("));
        // `panic!(` / `unreachable!(` / `todo!(` / `unimplemented!(`.
        let is_macro = matches!(
            t.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) && toks.get(i + 1).is_some_and(|n| is_punct(n, "!"));
        if is_method || is_macro {
            findings.push(finding(
                "P1",
                path,
                t.line,
                lines,
                format!(
                    "`{}` in library code: convert to Result/saturating handling, or prove the \
                     site infallible with `// smartlint: allow(panic, \"…\")`",
                    t.text
                ),
            ));
        }
    }
}

/// H1 — crate-root header lints.
fn rule_h1(path: &str, lexed: &Lexed, findings: &mut Vec<Finding>) {
    // Collect inner-attribute lint declarations: `#![level(lint, …)]`.
    let toks = &lexed.tokens;
    let mut declared: Vec<(String, String)> = Vec::new();
    let mut i = 0;
    while i + 4 < toks.len() {
        if is_punct(&toks[i], "#")
            && is_punct(&toks[i + 1], "!")
            && is_punct(&toks[i + 2], "[")
            && toks[i + 3].kind == TokenKind::Ident
            && matches!(toks[i + 3].text.as_str(), "forbid" | "deny" | "warn")
            && is_punct(&toks[i + 4], "(")
        {
            let level = toks[i + 3].text.clone();
            let mut j = i + 5;
            while j < toks.len() && !is_punct(&toks[j], "]") {
                if toks[j].kind == TokenKind::Ident {
                    declared.push((level.clone(), toks[j].text.clone()));
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    let has = |level: &[&str], lint: &str| {
        declared
            .iter()
            .any(|(l, n)| level.contains(&l.as_str()) && n == lint)
    };
    let mut missing = Vec::new();
    if !has(&["forbid"], "unsafe_code") {
        missing.push("#![forbid(unsafe_code)]");
    }
    if !has(&["forbid", "deny"], "missing_docs") {
        missing.push("#![deny(missing_docs)]");
    }
    if !missing.is_empty() {
        findings.push(Finding {
            rule: "H1".to_string(),
            file: path.to_string(),
            line: 1,
            message: format!(
                "crate root is missing the agreed header-lint set: {}",
                missing.join(", ")
            ),
            excerpt: "(crate root attributes)".to_string(),
            baselined: false,
        });
    }
}

/// C1 — non-atomic checkpoint writes. Flags the raw file-writing
/// surface (`File::create`, `OpenOptions`, `fs::write`, `.write_all(`)
/// in campaign persistence code: a process killed mid-write leaves a
/// torn journal unless the bytes went to a temp sibling first and were
/// renamed over the target in one step. The one sanctioned writer
/// (`CheckpointJournal::flush`) carries the justification annotations.
fn rule_c1(
    path: &str,
    lexed: &Lexed,
    lines: &[&str],
    regions: &[(u32, u32)],
    findings: &mut Vec<Finding>,
) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || in_test_region(regions, t.line) {
            continue;
        }
        // `File :: create` / `File :: options` / any `OpenOptions` use.
        let file_ctor = t.text == "File"
            && toks.get(i + 1).is_some_and(|n| is_punct(n, ":"))
            && toks.get(i + 2).is_some_and(|n| is_punct(n, ":"))
            && toks
                .get(i + 3)
                .is_some_and(|n| matches!(n.text.as_str(), "create" | "create_new" | "options"));
        let open_options = t.text == "OpenOptions";
        // `fs :: write` path call.
        let fs_write = t.text == "fs"
            && toks.get(i + 1).is_some_and(|n| is_punct(n, ":"))
            && toks.get(i + 2).is_some_and(|n| is_punct(n, ":"))
            && toks.get(i + 3).is_some_and(|n| n.text == "write");
        // `. write_all (` method call.
        let write_all = t.text == "write_all"
            && i >= 1
            && is_punct(&toks[i - 1], ".")
            && toks.get(i + 1).is_some_and(|n| is_punct(n, "("));
        if file_ctor || open_options || fs_write || write_all {
            findings.push(finding(
                "C1",
                path,
                t.line,
                lines,
                format!(
                    "`{}` writes checkpoint state non-atomically: a kill mid-write tears the \
                     journal — write to a `.tmp` sibling and `fs::rename` over the target \
                     (CheckpointJournal::flush), or justify with \
                     `// smartlint: allow(checkpoint-write, \"…\")`",
                    t.text
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_grammar_round_trips() {
        assert_eq!(
            parse_allow("allow(panic, \"provably infallible\")"),
            Some("panic".to_string())
        );
        assert_eq!(parse_allow("allow(panic)"), None, "reason is mandatory");
        assert_eq!(parse_allow("allow(panic, \"\")"), None, "reason non-empty");
        assert_eq!(parse_allow("deny(panic, \"x\")"), None);
    }

    #[test]
    fn suppression_covers_same_and_next_line() {
        let src = "// smartlint: allow(panic, \"fine\")\npub fn f(x: Option<u8>) -> u8 { x.unwrap() }\npub fn g(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let f = analyze_source("crates/archsim/src/demo.rs", src);
        assert_eq!(f.len(), 1, "only the un-annotated unwrap fires: {f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn test_regions_are_exempt_from_p1() {
        let src =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\n";
        assert!(analyze_source("crates/archsim/src/demo.rs", src).is_empty());
    }

    #[test]
    fn scoping_is_path_driven() {
        let cast = "pub fn f(x: f64) -> u64 { x as u64 }\n";
        assert!(!analyze_source("crates/archsim/src/execution.rs", cast).is_empty());
        assert!(analyze_source("crates/archsim/src/pipeline.rs", cast).is_empty());
        assert!(analyze_source("crates/bench/src/harness.rs", cast).is_empty());
    }

    #[test]
    fn binary_roots_are_exempt_from_panic_hygiene() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(analyze_source("crates/smartlint/src/main.rs", src).is_empty());
        assert!(analyze_source("crates/bench/src/bin/run.rs", src).is_empty());
        assert!(!analyze_source("crates/kernelsim/src/system.rs", src).is_empty());
    }

    #[test]
    fn slice_engine_module_is_inside_the_determinism_scope() {
        // The batched slice engine replays memoized state straight into
        // epoch reports, so both determinism rules must cover its file —
        // a scope regression here would let nondeterminism into the
        // engine-parity contract unseen.
        let path = "crates/kernelsim/src/engine.rs";
        assert!(d1_applies(path), "engine.rs must be in D1 scope");
        assert!(d2_applies(path), "engine.rs must be in D2 scope");

        let unordered = "use std::collections::HashMap;\npub fn sum(templates: HashMap<u64, u64>) -> u64 {\n    let mut s = 0;\n    for v in templates.values() { s += v; }\n    s\n}\n";
        let f = analyze_source(path, unordered);
        assert!(
            f.iter().any(|x| x.rule == "D1"),
            "unordered template iteration must fire D1 in engine.rs: {f:?}"
        );

        let clocky = "pub fn stamp() -> std::time::Instant { std::time::Instant::now() }\n";
        let f = analyze_source(path, clocky);
        assert!(
            f.iter().any(|x| x.rule == "D2"),
            "wall-clock reads must fire D2 in engine.rs: {f:?}"
        );
    }

    #[test]
    fn sharded_balancer_modules_are_inside_the_determinism_scope() {
        // The hierarchical balancer's worker-count-invariance contract
        // rests on these files never consulting the environment or
        // iterating unordered maps; pin them into both rules' scope.
        for path in [
            "crates/kernelsim/src/topology.rs",
            "crates/core/src/shard.rs",
            "crates/core/src/balance/sharded.rs",
        ] {
            assert!(d1_applies(path), "{path} must be in D1 scope");
            assert!(d2_applies(path), "{path} must be in D2 scope");
        }

        // `default_workers()` lives in suite.rs precisely because that
        // file is the one sanctioned environment-consulting point; a
        // parallelism probe anywhere in the shard path must fire D2.
        let probing =
            "pub fn w() -> usize { std::thread::available_parallelism().map_or(1, |n| n.get()) }\n";
        let f = analyze_source("crates/core/src/balance/sharded.rs", probing);
        assert!(
            f.iter().any(|x| x.rule == "D2"),
            "parallelism probes must fire D2 in sharded.rs: {f:?}"
        );
        assert!(
            analyze_source("crates/core/src/suite.rs", probing).is_empty(),
            "suite.rs is the sanctioned environment-consulting point"
        );
    }

    #[test]
    fn campaign_crate_is_inside_every_relevant_scope() {
        // The campaign runner's resume-byte-identity contract rests on
        // the same invariants as the simulator: no unordered iteration
        // (D1), no ambient time/randomness/env (D2), panic hygiene
        // (P1), and — unique to it — atomic checkpoint writes (C1).
        for path in [
            "crates/campaign/src/lib.rs",
            "crates/campaign/src/journal.rs",
            "crates/campaign/src/runner.rs",
        ] {
            assert!(d1_applies(path), "{path} must be in D1 scope");
            assert!(d2_applies(path), "{path} must be in D2 scope");
            assert!(p1_applies(path), "{path} must be in P1 scope");
            assert!(c1_applies(path), "{path} must be in C1 scope");
        }
        assert!(
            !c1_applies("crates/core/src/suite.rs"),
            "C1 is campaign-only; other crates do not persist checkpoints"
        );

        // A wall-clock timeout in the runner would break resume
        // determinism — D2 must catch it exactly as in the sim crates.
        let clocky = "pub fn stamp() -> std::time::Instant { std::time::Instant::now() }\n";
        let f = analyze_source("crates/campaign/src/runner.rs", clocky);
        assert!(
            f.iter().any(|x| x.rule == "D2"),
            "wall-clock reads must fire D2 in the campaign runner: {f:?}"
        );
    }

    #[test]
    fn c1_flags_every_raw_write_surface() {
        let src = "use std::fs::{self, File};\nuse std::io::Write;\npub fn a(p: &std::path::Path) { let _ = File::create(p); }\npub fn b(p: &std::path::Path) { let _ = std::fs::OpenOptions::new().append(true).open(p); }\npub fn c(p: &std::path::Path) { let _ = fs::write(p, b\"x\"); }\npub fn d(mut f: File) { let _ = f.write_all(b\"x\"); }\n";
        let got: Vec<(String, u32)> = analyze_source("crates/campaign/src/journal.rs", src)
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect();
        assert_eq!(
            got,
            vec![
                ("C1".to_string(), 3),
                ("C1".to_string(), 4),
                ("C1".to_string(), 5),
                ("C1".to_string(), 6),
            ],
            "File::create, OpenOptions, fs::write and write_all must each fire"
        );
    }

    #[test]
    fn c1_spares_renames_reads_and_annotated_sites() {
        let src = "use std::fs;\npub fn swap(a: &std::path::Path, b: &std::path::Path) -> std::io::Result<()> {\n    let _ = fs::read_to_string(a);\n    fs::rename(a, b)\n}\n// smartlint: allow(checkpoint-write, \"writes the .tmp sibling, then renames over the journal\")\npub fn tmp(p: &std::path::Path) { let _ = fs::write(p, b\"x\"); }\n";
        assert!(
            analyze_source("crates/campaign/src/journal.rs", src).is_empty(),
            "rename/read and the annotated tmp-writer are the sanctioned surface"
        );
    }
}
