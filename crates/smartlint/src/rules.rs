//! The lint rules and the workspace analysis pass.
//!
//! Every rule has a stable ID (`D1`, `D2`, `N1`, `N2`, `P1`, `H1`,
//! `C1`, `T1`, `W1`, `F2`, plus `A0` for malformed annotations) and an
//! annotation key for suppression. Numeric rules (`N1`, `N2`) and the
//! header rule (`H1`) are path-scoped; the determinism rules (`D1`,
//! `D2`, `C1`) are scoped by *call-graph reachability* from the
//! simulation roots (see [`crate::graph`]), so a new crate wired into
//! the simulation enters scope automatically instead of by editing a
//! hand-pinned path list. The taint rule (`T1`) reports the actual
//! root-to-sink call path for every reachable nondeterminism sink, and
//! the worker-pool rules (`W1`, `F2`) inspect closures passed to
//! spawn-reaching functions.
//!
//! # Annotation grammar
//!
//! A finding is suppressed by a justification comment on the same line
//! or the line directly above:
//!
//! ```text
//! // smartlint: allow(<key>, "<why this site is sound>")
//! ```
//!
//! The reason string is mandatory and must be non-empty; a `smartlint:`
//! comment that does not parse is itself reported (rule `A0`) so a
//! typo cannot silently disable enforcement. Suppressing a sink with
//! its native key (`nondeterminism`, `unordered-iter`,
//! `checkpoint-write`) also suppresses the paired `T1` taint finding
//! at that line — one justification covers both views of the same
//! site.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::graph::{
    is_binary_root, is_thread_spawn, DerivedScope, FileModel, Graph, EXEMPT_D_UNITS,
};
use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};
use crate::parser::{parse_file, Callee, ParsedFile};
use crate::SourceFile;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Rule ID (`D1`, `D2`, `N1`, `N2`, `P1`, `H1`, `C1`, `T1`, `W1`,
    /// `F2`, `A0`).
    pub rule: String,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line of the violation.
    pub line: u32,
    /// Human explanation of what is wrong and how to fix it.
    pub message: String,
    /// The trimmed source line, used as the baseline matching key.
    pub excerpt: String,
    /// Whether a baseline entry covers this finding.
    pub baselined: bool,
    /// For `T1`: the root-to-sink call chain (`path:line fn` labels,
    /// root first). Empty for every other rule.
    pub trace: Vec<String>,
}

/// Static description of one rule, for `--list-rules` and the docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule ID.
    pub id: &'static str,
    /// The `allow(<key>, ...)` annotation key.
    pub key: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// Every rule smartlint enforces, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D1",
        key: "unordered-iter",
        summary: "no HashMap/HashSet iteration in root-reachable simulation code (keyed lookups stay legal)",
    },
    RuleInfo {
        id: "D2",
        key: "nondeterminism",
        summary: "no wall-clock, ambient randomness or env-dependent values in root-reachable simulation code",
    },
    RuleInfo {
        id: "N1",
        key: "numeric-cast",
        summary: "no bare `as` numeric casts in counter/energy accounting files; use the sanctioned helpers",
    },
    RuleInfo {
        id: "N2",
        key: "float-width",
        summary: "no f32 in power/energy paths; all accounting is f64",
    },
    RuleInfo {
        id: "P1",
        key: "panic",
        summary: "unwrap()/expect()/panic! in library code requires a justification annotation",
    },
    RuleInfo {
        id: "H1",
        key: "header",
        summary: "crate roots must carry #![forbid(unsafe_code)] and #![deny(missing_docs)]",
    },
    RuleInfo {
        id: "C1",
        key: "checkpoint-write",
        summary: "no direct file writes in campaign checkpoint code; all persistence goes through the atomic temp-file+rename writer",
    },
    RuleInfo {
        id: "T1",
        key: "taint-path",
        summary: "no call path from a simulation root to a nondeterminism sink (clock, randomness, env, unordered iteration, raw file write, thread spawn)",
    },
    RuleInfo {
        id: "W1",
        key: "worker-capture",
        summary: "worker-pool closures must not touch shared mutable state (locks, atomics, RefCells) outside the sanctioned merge points",
    },
    RuleInfo {
        id: "F2",
        key: "float-fold",
        summary: "no order-sensitive accumulation into captured state inside worker-pool closures; fold per-slot and merge deterministically",
    },
    RuleInfo {
        id: "A0",
        key: "annotation",
        summary: "smartlint annotations must parse and carry a non-empty reason",
    },
];

/// Looks up a rule by ID.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

// ---------------------------------------------------------------------
// Path scopes (rules that stay path-driven)
// ---------------------------------------------------------------------

/// Library crates subject to panic hygiene (P1). `crates/bench` is the
/// timing/CLI harness and exempt by design.
const LIB_CRATES: &[&str] = &[
    "crates/archsim/src/",
    "crates/kernelsim/src/",
    "crates/mcpat/src/",
    "crates/workloads/src/",
    "crates/core/src/",
    "crates/smartlint/src/",
    "crates/telemetry/src/",
    "crates/campaign/src/",
    "crates/obsd/src/",
];

/// Counter/energy accounting files where every numeric `as` cast must
/// go through a sanctioned helper (N1).
const NUMERIC_FILES: &[&str] = &[
    "crates/archsim/src/counters.rs",
    "crates/archsim/src/execution.rs",
    "crates/mcpat/src/",
    "crates/core/src/estimate.rs",
];

/// Power/energy-path files where `f32` is banned outright (N2).
const POWER_FILES: &[&str] = &[
    "crates/mcpat/src/",
    "crates/core/src/objective.rs",
    "crates/kernelsim/src/stats.rs",
];

fn in_scope(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| {
        if p.ends_with(".rs") {
            path == *p
        } else {
            path.starts_with(p)
        }
    })
}

fn n1_applies(path: &str) -> bool {
    in_scope(path, NUMERIC_FILES)
}

fn n2_applies(path: &str) -> bool {
    in_scope(path, POWER_FILES)
}

fn p1_applies(path: &str) -> bool {
    in_scope(path, LIB_CRATES) && !is_binary_root(path)
}

fn h1_applies(path: &str) -> bool {
    path.starts_with("crates/") && path.ends_with("/src/lib.rs")
}

// ---------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Annotation {
    key: String,
    line: u32,
}

/// Parses `smartlint:` comments into suppression annotations; comments
/// that mention smartlint but do not parse become `A0` findings.
fn collect_annotations(
    comments: &[Comment],
    path: &str,
    lines: &[&str],
    findings: &mut Vec<Finding>,
) -> Vec<Annotation> {
    let mut out = Vec::new();
    for c in comments {
        // Doc comments routinely *mention* the grammar (as this file
        // does); only a plain comment whose body leads with
        // `smartlint:` is an annotation.
        let text = c.text.as_str();
        if text.starts_with("///")
            || text.starts_with("//!")
            || text.starts_with("/**")
            || text.starts_with("/*!")
        {
            continue;
        }
        let body = text
            .strip_prefix("//")
            .or_else(|| text.strip_prefix("/*"))
            .unwrap_or(text)
            .trim_start();
        let Some(rest) = body.strip_prefix("smartlint:").map(str::trim) else {
            continue;
        };
        match parse_allow(rest) {
            Some(key) if RULES.iter().any(|r| r.key == key) => {
                out.push(Annotation { key, line: c.line })
            }
            Some(key) => findings.push(finding(
                "A0",
                path,
                c.line,
                lines,
                format!("unknown smartlint rule key {key:?} in annotation"),
            )),
            None => findings.push(finding(
                "A0",
                path,
                c.line,
                lines,
                "malformed smartlint annotation; expected `smartlint: allow(<key>, \"reason\")`"
                    .to_string(),
            )),
        }
    }
    out
}

/// Parses `allow(<key>, "<reason>")`, returning the key. The reason is
/// mandatory and must be a non-empty string literal.
fn parse_allow(text: &str) -> Option<String> {
    let body = text.strip_prefix("allow")?.trim_start();
    let body = body.strip_prefix('(')?;
    let close = body.rfind(')')?;
    let body = &body[..close];
    let comma = body.find(',')?;
    let key = body[..comma].trim();
    let reason = body[comma + 1..].trim();
    let reason = reason.strip_prefix('"')?.strip_suffix('"')?;
    if key.is_empty() || reason.trim().is_empty() {
        return None;
    }
    Some(key.to_string())
}

fn suppressed(annotations: &[Annotation], key: &str, line: u32) -> bool {
    annotations
        .iter()
        .any(|a| a.key == key && (a.line == line || a.line + 1 == line))
}

// ---------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------

/// Line ranges covered by `#[cfg(test)]` / `#[test]` items. Rules that
/// protect runtime accounting (D2, N1, P1) skip these: tests may time
/// themselves, cast freely in assertions and unwrap known-good values.
pub(crate) fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if let Some(attr_end) = match_test_attr(tokens, i) {
            // Find the item's opening brace, then its matching close.
            let mut j = attr_end;
            while j < tokens.len() && !is_punct(&tokens[j], "{") {
                j += 1;
            }
            let start_line = tokens[i].line;
            let mut depth = 0i64;
            while j < tokens.len() {
                if is_punct(&tokens[j], "{") {
                    depth += 1;
                } else if is_punct(&tokens[j], "}") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let end_line = tokens.get(j).map_or(u32::MAX, |t| t.line);
            regions.push((start_line, end_line));
            i = j.max(i) + 1;
        } else {
            i += 1;
        }
    }
    regions
}

/// If tokens at `i` start `#[cfg(test)]` or `#[test]`, returns the
/// index one past the closing `]`.
fn match_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    if !is_punct(tokens.get(i)?, "#") || !is_punct(tokens.get(i + 1)?, "[") {
        return None;
    }
    let name = tokens.get(i + 2)?;
    if name.kind != TokenKind::Ident {
        return None;
    }
    match name.text.as_str() {
        "test" if is_punct(tokens.get(i + 3)?, "]") => Some(i + 4),
        "cfg" => {
            // #[cfg(test)] exactly: cfg ( test ) ]
            if is_punct(tokens.get(i + 3)?, "(")
                && tokens.get(i + 4).is_some_and(|t| t.text == "test")
                && is_punct(tokens.get(i + 5)?, ")")
                && is_punct(tokens.get(i + 6)?, "]")
            {
                Some(i + 7)
            } else {
                None
            }
        }
        _ => None,
    }
}

fn in_test_region(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == s
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == s
}

// ---------------------------------------------------------------------
// Sink detectors (shared by the base rules and the taint pass)
// ---------------------------------------------------------------------

/// One detector hit: the raw material for a base-rule finding and, when
/// the enclosing fn is root-reachable, a `T1` taint finding.
struct SinkHit {
    line: u32,
    /// Token index of the offending token (locates the enclosing fn).
    tok: usize,
    /// Short sink description for the `T1` message.
    what: String,
    /// Full message for the base-rule finding.
    message: String,
}

/// D1 — unordered iteration. Collects identifiers declared with
/// `HashMap`/`HashSet` types or constructors, then flags iteration
/// method calls and `for … in` loops whose receiver is one of them.
fn detect_d1(lexed: &Lexed) -> Vec<SinkHit> {
    const ITER_METHODS: &[&str] = &[
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "into_iter",
        "into_keys",
        "into_values",
        "drain",
        "retain",
    ];
    let toks = &lexed.tokens;
    let mut names: Vec<String> = Vec::new();

    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident
            || (toks[i].text != "HashMap" && toks[i].text != "HashSet")
        {
            continue;
        }
        // Walk backwards over a path/type prefix (`std :: collections ::`,
        // `&`, `mut`, `<` of generics) to the declared name: the nearest
        // preceding `ident :` or `ident =`.
        let mut j = i;
        while j > 0 {
            let prev = &toks[j - 1];
            let skippable = is_punct(prev, ":")
                || is_punct(prev, "&")
                || is_punct(prev, "<")
                || is_ident(prev, "std")
                || is_ident(prev, "collections")
                || is_ident(prev, "mut")
                || is_ident(prev, "dyn");
            if !skippable {
                break;
            }
            j -= 1;
            if is_punct(&toks[j], ":") && j > 0 && toks[j - 1].kind == TokenKind::Ident {
                // `name : … HashMap` — a field, binding or parameter;
                // but `seg :: HashMap` is a path, not a declaration.
                let path_sep = j >= 2 && is_punct(&toks[j - 2], ":");
                if !path_sep {
                    names.push(toks[j - 1].text.clone());
                }
                break;
            }
        }
        // `name = HashMap::new()` style.
        if i >= 2 && is_punct(&toks[i - 1], "=") && toks[i - 2].kind == TokenKind::Ident {
            names.push(toks[i - 2].text.clone());
        }
    }
    names.sort();
    names.dedup();

    let mut hits = Vec::new();
    for i in 0..toks.len() {
        // Method-call form: `name . iter (`  /  `self . name . drain (`.
        if toks[i].kind == TokenKind::Ident
            && ITER_METHODS.contains(&toks[i].text.as_str())
            && i >= 2
            && is_punct(&toks[i - 1], ".")
            && toks[i - 2].kind == TokenKind::Ident
            && names.contains(&toks[i - 2].text)
            && toks.get(i + 1).is_some_and(|t| is_punct(t, "("))
        {
            hits.push(SinkHit {
                line: toks[i].line,
                tok: i,
                what: format!(
                    "unordered iteration `{}.{}()`",
                    toks[i - 2].text,
                    toks[i].text
                ),
                message: format!(
                    "iteration over unordered container `{recv}.{m}()`: HashMap/HashSet visit \
                     order is nondeterministic and must never reach reports, serialized output \
                     or allocation decisions — use BTreeMap or a sorted Vec, or justify with \
                     `// smartlint: allow(unordered-iter, \"…\")`",
                    recv = toks[i - 2].text,
                    m = toks[i].text
                ),
            });
        }
        // `for pat in <expr containing a map name> {`
        if is_ident(&toks[i], "for") {
            let mut j = i + 1;
            while j < toks.len() && !is_ident(&toks[j], "in") {
                j += 1;
            }
            let mut k = j + 1;
            let mut offender: Option<usize> = None;
            while k < toks.len() && !is_punct(&toks[k], "{") {
                if toks[k].kind == TokenKind::Ident && names.contains(&toks[k].text) {
                    offender = Some(k);
                }
                k += 1;
            }
            if let Some(k) = offender {
                hits.push(SinkHit {
                    line: toks[k].line,
                    tok: k,
                    what: format!("unordered `for … in {}`", toks[k].text),
                    message: format!(
                        "`for … in` over unordered container `{}`: iteration order is \
                         nondeterministic — use BTreeMap or a sorted Vec, or justify with \
                         `// smartlint: allow(unordered-iter, \"…\")`",
                        toks[k].text
                    ),
                });
            }
        }
    }
    hits
}

/// D2 — ambient nondeterminism: wall clocks, OS randomness,
/// environment. Tokens inside `use` statements are skipped — importing
/// a name is not an effect; every *usage* site still fires.
fn detect_d2(lexed: &Lexed, parsed: &ParsedFile, regions: &[(u32, u32)]) -> Vec<SinkHit> {
    const BANNED: &[(&str, &str)] = &[
        ("Instant", "wall-clock time"),
        ("SystemTime", "wall-clock time"),
        ("UNIX_EPOCH", "wall-clock time"),
        ("thread_rng", "ambient randomness"),
        ("getrandom", "ambient randomness"),
        ("from_entropy", "ambient randomness"),
        ("available_parallelism", "environment-dependent parallelism"),
    ];
    let toks = &lexed.tokens;
    let mut hits = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test_region(regions, t.line) || parsed.in_use_span(i) {
            continue;
        }
        if let Some((_, what)) = BANNED.iter().find(|(name, _)| t.text == *name) {
            hits.push(SinkHit {
                line: t.line,
                tok: i,
                what: format!("{what} (`{}`)", t.text),
                message: format!(
                    "`{}` introduces {what} into simulation code; results must be a pure \
                     function of explicit seeds and inputs (timing belongs in crates/bench \
                     or the suite harness)",
                    t.text
                ),
            });
        }
        // `rand` as a path segment (`rand::thread_rng`).
        if t.text == "rand"
            && toks.get(i + 1).is_some_and(|n| is_punct(n, ":"))
            && toks.get(i + 2).is_some_and(|n| is_punct(n, ":"))
        {
            hits.push(SinkHit {
                line: t.line,
                tok: i,
                what: "ambient randomness (`rand::`)".to_string(),
                message: "the `rand` crate is banned in simulation code; use the repo's seeded \
                          splitmix64/xorshift streams"
                    .to_string(),
            });
        }
        // `env :: var/vars/var_os/args` — environment reads.
        if t.text == "env"
            && toks.get(i + 1).is_some_and(|n| is_punct(n, ":"))
            && toks.get(i + 2).is_some_and(|n| is_punct(n, ":"))
            && toks.get(i + 3).is_some_and(|n| {
                matches!(
                    n.text.as_str(),
                    "var" | "vars" | "var_os" | "args" | "args_os"
                )
            })
        {
            hits.push(SinkHit {
                line: t.line,
                tok: i,
                what: "environment read (`env::`)".to_string(),
                message: "environment reads are banned in simulation code; thread configuration \
                          through explicit config structs"
                    .to_string(),
            });
        }
    }
    hits
}

/// C1 — non-atomic checkpoint writes. Flags the raw file-writing
/// surface (`File::create`, `OpenOptions`, `fs::write`, `.write_all(`)
/// in campaign persistence code: a process killed mid-write leaves a
/// torn journal unless the bytes went to a temp sibling first and were
/// renamed over the target in one step. The one sanctioned writer
/// (`CheckpointJournal::flush`) carries the justification annotations.
fn detect_c1(lexed: &Lexed, parsed: &ParsedFile, regions: &[(u32, u32)]) -> Vec<SinkHit> {
    let toks = &lexed.tokens;
    let mut hits = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || in_test_region(regions, t.line) || parsed.in_use_span(i) {
            continue;
        }
        // `File :: create` / `File :: options` / any `OpenOptions` use.
        let file_ctor = t.text == "File"
            && toks.get(i + 1).is_some_and(|n| is_punct(n, ":"))
            && toks.get(i + 2).is_some_and(|n| is_punct(n, ":"))
            && toks
                .get(i + 3)
                .is_some_and(|n| matches!(n.text.as_str(), "create" | "create_new" | "options"));
        let open_options = t.text == "OpenOptions";
        // `fs :: write` path call.
        let fs_write = t.text == "fs"
            && toks.get(i + 1).is_some_and(|n| is_punct(n, ":"))
            && toks.get(i + 2).is_some_and(|n| is_punct(n, ":"))
            && toks.get(i + 3).is_some_and(|n| n.text == "write");
        // `. write_all (` method call.
        let write_all = t.text == "write_all"
            && i >= 1
            && is_punct(&toks[i - 1], ".")
            && toks.get(i + 1).is_some_and(|n| is_punct(n, "("));
        if file_ctor || open_options || fs_write || write_all {
            hits.push(SinkHit {
                line: t.line,
                tok: i,
                what: format!("non-atomic file write (`{}`)", t.text),
                message: format!(
                    "`{}` writes checkpoint state non-atomically: a kill mid-write tears the \
                     journal — write to a `.tmp` sibling and `fs::rename` over the target \
                     (CheckpointJournal::flush), or justify with \
                     `// smartlint: allow(checkpoint-write, \"…\")`",
                    t.text
                ),
            });
        }
    }
    hits
}

// ---------------------------------------------------------------------
// Path-driven rules (unchanged by the graph)
// ---------------------------------------------------------------------

fn finding(rule: &str, path: &str, line: u32, lines: &[&str], message: String) -> Finding {
    let excerpt = lines
        .get(line.saturating_sub(1) as usize)
        .map_or("", |l| l.trim())
        .to_string();
    Finding {
        rule: rule.to_string(),
        file: path.to_string(),
        line,
        message,
        excerpt,
        baselined: false,
        trace: Vec::new(),
    }
}

/// N1 — bare numeric `as` casts in accounting files.
fn rule_n1(
    path: &str,
    lexed: &Lexed,
    lines: &[&str],
    regions: &[(u32, u32)],
    findings: &mut Vec<Finding>,
) {
    const NUMERIC_TYPES: &[&str] = &[
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
        "f32", "f64",
    ];
    let toks = &lexed.tokens;
    for i in 0..toks.len().saturating_sub(1) {
        if is_ident(&toks[i], "as")
            && toks[i + 1].kind == TokenKind::Ident
            && NUMERIC_TYPES.contains(&toks[i + 1].text.as_str())
            && !in_test_region(regions, toks[i].line)
        {
            findings.push(finding(
                "N1",
                path,
                toks[i].line,
                lines,
                format!(
                    "bare `as {}` cast in a counter/energy accounting file: lossy conversions \
                     silently corrupt totals — use `round_count`/`ceil_count`/`count_to_f64` \
                     (archsim) or justify with `// smartlint: allow(numeric-cast, \"…\")`",
                    toks[i + 1].text
                ),
            ));
        }
    }
}

/// N2 — `f32` anywhere in power/energy paths.
fn rule_n2(path: &str, lexed: &Lexed, lines: &[&str], findings: &mut Vec<Finding>) {
    for t in &lexed.tokens {
        let is_f32_type = t.kind == TokenKind::Ident && t.text == "f32";
        let is_f32_literal = t.kind == TokenKind::Number && t.text.ends_with("f32");
        if is_f32_type || is_f32_literal {
            findings.push(finding(
                "N2",
                path,
                t.line,
                lines,
                "f32 in a power/energy path: all power and energy accounting is f64 so \
                 accumulated error stays below measurement noise"
                    .to_string(),
            ));
        }
    }
}

/// P1 — panic hygiene in library code.
fn rule_p1(
    path: &str,
    lexed: &Lexed,
    lines: &[&str],
    regions: &[(u32, u32)],
    findings: &mut Vec<Finding>,
) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || in_test_region(regions, t.line) {
            continue;
        }
        // `.unwrap()` / `.expect(` — method calls only, so
        // `unwrap_or_else` and local fields named `expect` don't match.
        let is_method = matches!(t.text.as_str(), "unwrap" | "expect")
            && i >= 1
            && is_punct(&toks[i - 1], ".")
            && toks.get(i + 1).is_some_and(|n| is_punct(n, "("));
        // `panic!(` / `unreachable!(` / `todo!(` / `unimplemented!(`.
        let is_macro = matches!(
            t.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) && toks.get(i + 1).is_some_and(|n| is_punct(n, "!"));
        if is_method || is_macro {
            findings.push(finding(
                "P1",
                path,
                t.line,
                lines,
                format!(
                    "`{}` in library code: convert to Result/saturating handling, or prove the \
                     site infallible with `// smartlint: allow(panic, \"…\")`",
                    t.text
                ),
            ));
        }
    }
}

/// H1 — crate-root header lints.
fn rule_h1(path: &str, lexed: &Lexed, findings: &mut Vec<Finding>) {
    // Collect inner-attribute lint declarations: `#![level(lint, …)]`.
    let toks = &lexed.tokens;
    let mut declared: Vec<(String, String)> = Vec::new();
    let mut i = 0;
    while i + 4 < toks.len() {
        if is_punct(&toks[i], "#")
            && is_punct(&toks[i + 1], "!")
            && is_punct(&toks[i + 2], "[")
            && toks[i + 3].kind == TokenKind::Ident
            && matches!(toks[i + 3].text.as_str(), "forbid" | "deny" | "warn")
            && is_punct(&toks[i + 4], "(")
        {
            let level = toks[i + 3].text.clone();
            let mut j = i + 5;
            while j < toks.len() && !is_punct(&toks[j], "]") {
                if toks[j].kind == TokenKind::Ident {
                    declared.push((level.clone(), toks[j].text.clone()));
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    let has = |level: &[&str], lint: &str| {
        declared
            .iter()
            .any(|(l, n)| level.contains(&l.as_str()) && n == lint)
    };
    let mut missing = Vec::new();
    if !has(&["forbid"], "unsafe_code") {
        missing.push("#![forbid(unsafe_code)]");
    }
    if !has(&["forbid", "deny"], "missing_docs") {
        missing.push("#![deny(missing_docs)]");
    }
    if !missing.is_empty() {
        findings.push(Finding {
            rule: "H1".to_string(),
            file: path.to_string(),
            line: 1,
            message: format!(
                "crate root is missing the agreed header-lint set: {}",
                missing.join(", ")
            ),
            excerpt: "(crate root attributes)".to_string(),
            baselined: false,
            trace: Vec::new(),
        });
    }
}

// ---------------------------------------------------------------------
// Worker-pool rules (W1, F2)
// ---------------------------------------------------------------------

/// Shared-mutable-state access methods that must not appear inside a
/// worker closure outside the sanctioned merge points (W1).
const SHARED_MUT_METHODS: &[&str] = &[
    "lock",
    "try_lock",
    "borrow_mut",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "store",
];

/// Identifiers bound *inside* a closure: its parameters and `let`
/// bindings. Everything else an accumulation targets is captured.
fn closure_locals(toks: &[Token], params: (usize, usize), body: (usize, usize)) -> Vec<String> {
    let mut locals = Vec::new();
    for t in toks.iter().take(params.1 + 1).skip(params.0) {
        if t.kind == TokenKind::Ident && t.text != "mut" && t.text != "ref" {
            locals.push(t.text.clone());
        }
    }
    let mut i = body.0;
    while i <= body.1.min(toks.len().saturating_sub(1)) {
        if is_ident(&toks[i], "let") {
            let mut j = i + 1;
            // `let`, `let mut`, simple tuple patterns.
            while j <= body.1 && j < toks.len() {
                let t = &toks[j];
                if t.kind == TokenKind::Ident && t.text != "mut" && t.text != "ref" {
                    locals.push(t.text.clone());
                } else if !(is_ident(t, "mut")
                    || is_ident(t, "ref")
                    || is_punct(t, "(")
                    || is_punct(t, ",")
                    || is_punct(t, ")"))
                {
                    break;
                }
                j += 1;
            }
        }
        i += 1;
    }
    locals.sort();
    locals.dedup();
    locals
}

/// Walks a postfix chain (`head.a().b().sum()`) backwards from the
/// token *before* the final `.` to the chain's head identifier.
/// Returns `None` when the chain head is not a plain identifier (e.g.
/// a call result or a parenthesized expression).
fn chain_head(toks: &[Token], mut pos: usize) -> Option<String> {
    loop {
        if is_punct(&toks[pos], ")") {
            // Balance back to the matching `(`.
            let mut depth = 0i64;
            loop {
                if is_punct(&toks[pos], ")") {
                    depth += 1;
                } else if is_punct(&toks[pos], "(") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if pos == 0 {
                    return None;
                }
                pos -= 1;
            }
            // `name(...)`: a method link continues the chain; a bare
            // call is a fresh value, not a capture.
            if pos >= 1 && toks[pos - 1].kind == TokenKind::Ident {
                if pos >= 2 && is_punct(&toks[pos - 2], ".") {
                    if pos < 3 {
                        return None;
                    }
                    pos -= 3;
                    continue;
                }
                return None;
            }
            return None;
        }
        if toks[pos].kind == TokenKind::Ident {
            if pos >= 1 && is_punct(&toks[pos - 1], ".") {
                if pos < 2 {
                    return None;
                }
                pos -= 2;
                continue;
            }
            return Some(toks[pos].text.clone());
        }
        if is_punct(&toks[pos], "]") {
            // Index expression `name[i]`: balance back over brackets.
            let mut depth = 0i64;
            loop {
                if is_punct(&toks[pos], "]") {
                    depth += 1;
                } else if is_punct(&toks[pos], "[") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if pos == 0 {
                    return None;
                }
                pos -= 1;
            }
            if pos == 0 {
                return None;
            }
            pos -= 1;
            continue;
        }
        return None;
    }
}

/// W1 + F2 over one worker-closure body.
fn scan_worker_closure(
    path: &str,
    toks: &[Token],
    lines: &[&str],
    params: (usize, usize),
    body: (usize, usize),
    pool_label: &str,
    findings: &mut Vec<Finding>,
) {
    let locals = closure_locals(toks, params, body);
    let end = body.1.min(toks.len().saturating_sub(1));
    let mut i = body.0;
    while i <= end {
        let t = &toks[i];
        // W1: shared-mutable-state access methods.
        if t.kind == TokenKind::Ident
            && SHARED_MUT_METHODS.contains(&t.text.as_str())
            && i >= 1
            && is_punct(&toks[i - 1], ".")
            && toks.get(i + 1).is_some_and(|n| is_punct(n, "("))
        {
            findings.push(finding(
                "W1",
                path,
                t.line,
                lines,
                format!(
                    "`.{}(…)` inside a closure running on the `{pool_label}` worker pool: \
                     shared mutable state observed from workers makes results depend on \
                     completion order — return per-index values and merge at the pool's \
                     deterministic merge point, or justify with \
                     `// smartlint: allow(worker-capture, \"…\")`",
                    t.text
                ),
            ));
        }
        // F2: compound assignment (`x += …`) to a captured identifier.
        if t.kind == TokenKind::Ident
            && toks
                .get(i + 1)
                .is_some_and(|n| is_punct(n, "+") || is_punct(n, "-") || is_punct(n, "*"))
            && toks.get(i + 2).is_some_and(|n| is_punct(n, "="))
            && !toks.get(i + 3).is_some_and(|n| is_punct(n, "="))
        {
            let target_is_chain = i >= 1 && is_punct(&toks[i - 1], ".");
            let head = if target_is_chain {
                chain_head(toks, i)
            } else {
                Some(t.text.clone())
            };
            if let Some(head) = head {
                if !locals.contains(&head) {
                    findings.push(finding(
                        "F2",
                        path,
                        t.line,
                        lines,
                        format!(
                            "order-sensitive accumulation into captured `{head}` inside a \
                             closure on the `{pool_label}` worker pool: float folds are not \
                             associative, so completion order changes the result — accumulate \
                             into closure-local state and merge in index order, or justify \
                             with `// smartlint: allow(float-fold, \"…\")`",
                        ),
                    ));
                }
            }
        }
        // F2: `.sum(` / `.fold(` whose receiver chain heads at a
        // captured identifier.
        if t.kind == TokenKind::Ident
            && (t.text == "sum" || t.text == "fold")
            && i >= 2
            && is_punct(&toks[i - 1], ".")
            && toks
                .get(i + 1)
                .is_some_and(|n| is_punct(n, "(") || is_punct(n, ":"))
        {
            if let Some(head) = chain_head(toks, i - 2) {
                if !locals.contains(&head) && head != "self" {
                    findings.push(finding(
                        "F2",
                        path,
                        t.line,
                        lines,
                        format!(
                            "`.{}()` over captured `{head}` inside a closure on the \
                             `{pool_label}` worker pool: order-sensitive folds over shared \
                             data belong outside the pool (or in the sanctioned per-slice \
                             folds) — or justify with `// smartlint: allow(float-fold, \"…\")`",
                            t.text
                        ),
                    ));
                }
            }
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------
// The analysis pipeline
// ---------------------------------------------------------------------

/// Analyzes one file's source as if it lived at workspace-relative
/// `path` (scoping is path-driven for N1/N2/P1/H1, and assume-all for
/// the graph rules when the file defines no simulation root — which is
/// what lets the fixture tests exercise every rule without touching
/// the real tree).
pub fn analyze_source(path: &str, source: &str) -> Vec<Finding> {
    let files = vec![SourceFile {
        path: path.to_string(),
        source: source.to_string(),
    }];
    analyze_set(&files, &BTreeMap::new()).0
}

/// Analyzes a set of files as one workspace: builds the call graph,
/// derives rule scope from root reachability, and runs every rule.
/// Returns the findings (file order, then line order) and the derived
/// scope.
pub(crate) fn analyze_set(
    files: &[SourceFile],
    crate_names: &BTreeMap<String, String>,
) -> (Vec<Finding>, DerivedScope) {
    struct Prep<'a> {
        lexed: Lexed,
        lines: Vec<&'a str>,
        regions: Vec<(u32, u32)>,
        annotations: Vec<Annotation>,
        raw: Vec<Finding>,
    }

    let mut preps: Vec<Prep<'_>> = Vec::with_capacity(files.len());
    let mut models: Vec<FileModel> = Vec::with_capacity(files.len());
    for f in files {
        let lexed = lex(&f.source);
        let lines: Vec<&str> = f.source.lines().collect();
        let mut raw = Vec::new();
        let annotations = collect_annotations(&lexed.comments, &f.path, &lines, &mut raw);
        let regions = test_regions(&lexed.tokens);
        models.push(FileModel::new(&f.path, parse_file(&lexed.tokens, &regions)));
        preps.push(Prep {
            lexed,
            lines,
            regions,
            annotations,
            raw,
        });
    }

    let graph = Graph::build(models, crate_names);
    let reach = graph.reach_from_roots();
    let scope = graph.derived_scope(&reach);
    let spawnful = graph.spawnful();

    for (i, f) in files.iter().enumerate() {
        let path = f.path.as_str();
        let parsed = &graph.files[i].parsed;
        let prep = &mut preps[i];
        let exempt = EXEMPT_D_UNITS.iter().any(|u| path.starts_with(u));

        let d1_hits = detect_d1(&prep.lexed);
        let d2_hits = detect_d2(&prep.lexed, parsed, &prep.regions);
        let c1_hits = detect_c1(&prep.lexed, parsed, &prep.regions);

        if scope.d1_applies(path) {
            for h in &d1_hits {
                prep.raw
                    .push(finding("D1", path, h.line, &prep.lines, h.message.clone()));
            }
        }
        if scope.d2_applies(path) {
            for h in &d2_hits {
                prep.raw
                    .push(finding("D2", path, h.line, &prep.lines, h.message.clone()));
            }
        }
        if n1_applies(path) {
            rule_n1(path, &prep.lexed, &prep.lines, &prep.regions, &mut prep.raw);
        }
        if n2_applies(path) {
            rule_n2(path, &prep.lexed, &prep.lines, &mut prep.raw);
        }
        if p1_applies(path) {
            rule_p1(path, &prep.lexed, &prep.lines, &prep.regions, &mut prep.raw);
        }
        if h1_applies(path) {
            rule_h1(path, &prep.lexed, &mut prep.raw);
        }
        if scope.c1_applies(path) {
            for h in &c1_hits {
                prep.raw
                    .push(finding("C1", path, h.line, &prep.lines, h.message.clone()));
            }
        }

        // T1 — taint: every sink inside a root-reachable fn gets a
        // path finding. Binary roots and the exempt timing harness are
        // out of scope exactly as for D2; suppressing the sink with
        // its native key suppresses the paired taint finding too.
        if !is_binary_root(path) && !exempt {
            let mut sinks: Vec<(&SinkHit, Option<&str>)> = Vec::new();
            for h in &d1_hits {
                sinks.push((h, Some("unordered-iter")));
            }
            for h in &d2_hits {
                sinks.push((h, Some("nondeterminism")));
            }
            let spawn_hits: Vec<SinkHit> = parsed
                .calls
                .iter()
                .filter(|c| is_thread_spawn(parsed, c))
                .map(|c| SinkHit {
                    line: c.line,
                    tok: c.tok,
                    what: "thread spawn (`spawn`)".to_string(),
                    message: String::new(),
                })
                .collect();
            for h in &spawn_hits {
                sinks.push((h, None));
            }
            let c1_in_scope = scope.c1_applies(path);
            if c1_in_scope {
                for h in &c1_hits {
                    sinks.push((h, Some("checkpoint-write")));
                }
            }
            for (h, native) in sinks {
                let Some(ni) = parsed.enclosing_fn(h.tok) else {
                    continue;
                };
                let Some(node) = graph.node_id(i, ni) else {
                    continue;
                };
                if !reach.reachable[node] {
                    continue;
                }
                if native.is_some_and(|k| suppressed(&prep.annotations, k, h.line)) {
                    continue;
                }
                let trace = graph.trace_to(&reach, node);
                let root = trace.first().cloned().unwrap_or_default();
                let mut tf = finding(
                    "T1",
                    path,
                    h.line,
                    &prep.lines,
                    format!(
                        "{what} is reachable from simulation root `{root}` ({hops} call{s} \
                         away): every function on this path feeds deterministic results — \
                         break the path or justify the sink with \
                         `// smartlint: allow(taint-path, \"…\")`",
                        what = h.what,
                        hops = trace.len().saturating_sub(1),
                        s = if trace.len() == 2 { "" } else { "s" },
                    ),
                );
                tf.trace = trace;
                prep.raw.push(tf);
            }
        }
    }

    // W1/F2 — closures handed to spawn-reaching callees.
    for (fi, prep) in preps.iter_mut().enumerate() {
        let path = graph.files[fi].path.clone();
        if is_binary_root(&path) || EXEMPT_D_UNITS.iter().any(|u| path.starts_with(u)) {
            continue;
        }
        let thread_spawn_toks: BTreeSet<usize> = graph.files[fi]
            .parsed
            .calls
            .iter()
            .filter(|c| is_thread_spawn(&graph.files[fi].parsed, c))
            .map(|c| c.tok)
            .collect();
        let closure_count = graph.files[fi].parsed.closures.len();
        for ci in 0..closure_count {
            let (callee, caller, call_tok, params, body) = {
                let c = &graph.files[fi].parsed.closures[ci];
                (c.callee.clone(), c.caller, c.call_tok, c.params, c.body)
            };
            let spawn_reaching = thread_spawn_toks.contains(&call_tok)
                || graph
                    .resolve(fi, caller, &callee)
                    .iter()
                    .any(|&n| spawnful[n]);
            if !spawn_reaching {
                continue;
            }
            let label = match &callee {
                Callee::Method(m) => format!(".{m}"),
                other => other.name().to_string(),
            };
            scan_worker_closure(
                &path,
                &prep.lexed.tokens,
                &prep.lines,
                params,
                body,
                &label,
                &mut prep.raw,
            );
        }
    }

    // Apply suppressions, dedupe to one finding per (rule, line), and
    // order by position for stable output — per file, in input order.
    let mut out = Vec::new();
    for prep in preps {
        let annotations = prep.annotations;
        let mut kept: Vec<Finding> = Vec::new();
        for f in prep.raw {
            let key = rule_info(&f.rule).map_or("", |r| r.key);
            if f.rule != "A0" && suppressed(&annotations, key, f.line) {
                continue;
            }
            if kept.iter().any(|k| k.rule == f.rule && k.line == f.line) {
                continue;
            }
            kept.push(f);
        }
        kept.sort_by(|a, b| (a.line, a.rule.as_str()).cmp(&(b.line, b.rule.as_str())));
        out.extend(kept);
    }
    (out, scope)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_grammar_round_trips() {
        assert_eq!(
            parse_allow("allow(panic, \"provably infallible\")"),
            Some("panic".to_string())
        );
        assert_eq!(parse_allow("allow(panic)"), None, "reason is mandatory");
        assert_eq!(parse_allow("allow(panic, \"\")"), None, "reason non-empty");
        assert_eq!(parse_allow("deny(panic, \"x\")"), None);
    }

    #[test]
    fn suppression_covers_same_and_next_line() {
        let src = "// smartlint: allow(panic, \"fine\")\npub fn f(x: Option<u8>) -> u8 { x.unwrap() }\npub fn g(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let f = analyze_source("crates/archsim/src/demo.rs", src);
        assert_eq!(f.len(), 1, "only the un-annotated unwrap fires: {f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn test_regions_are_exempt_from_p1() {
        let src =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\n";
        assert!(analyze_source("crates/archsim/src/demo.rs", src).is_empty());
    }

    #[test]
    fn scoping_is_path_driven() {
        let cast = "pub fn f(x: f64) -> u64 { x as u64 }\n";
        assert!(!analyze_source("crates/archsim/src/execution.rs", cast).is_empty());
        assert!(analyze_source("crates/archsim/src/pipeline.rs", cast).is_empty());
        assert!(analyze_source("crates/bench/src/harness.rs", cast).is_empty());
    }

    #[test]
    fn binary_roots_are_exempt_from_panic_hygiene() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(analyze_source("crates/smartlint/src/main.rs", src).is_empty());
        assert!(analyze_source("crates/bench/src/bin/run.rs", src).is_empty());
        assert!(!analyze_source("crates/kernelsim/src/system.rs", src).is_empty());
    }

    #[test]
    fn use_statements_are_not_sinks() {
        // Importing `Instant` is harmless; *reading* the clock fires.
        let src = "use std::time::Instant;\npub fn stamp() -> Instant { Instant::now() }\n";
        let f = analyze_source("crates/kernelsim/src/system.rs", src);
        let lines: Vec<u32> = f
            .iter()
            .filter(|x| x.rule == "D2")
            .map(|x| x.line)
            .collect();
        assert_eq!(lines, vec![2], "only the usage line fires: {f:?}");
    }

    #[test]
    fn c1_flags_every_raw_write_surface() {
        let src = "use std::io::Write;\npub fn a(p: &std::path::Path) { let _ = std::fs::File::create(p); }\npub fn b(p: &std::path::Path) { let _ = std::fs::OpenOptions::new().append(true).open(p); }\npub fn c(p: &std::path::Path) { let _ = std::fs::write(p, b\"x\"); }\npub fn d(mut f: std::fs::File) { let _ = f.write_all(b\"x\"); }\n";
        let got: Vec<(String, u32)> = analyze_source("crates/campaign/src/journal.rs", src)
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect();
        assert_eq!(
            got,
            vec![
                ("C1".to_string(), 2),
                ("C1".to_string(), 3),
                ("C1".to_string(), 4),
                ("C1".to_string(), 5),
            ],
            "File::create, OpenOptions, fs::write and write_all must each fire"
        );
    }

    #[test]
    fn c1_spares_renames_reads_and_annotated_sites() {
        let src = "use std::fs;\npub fn swap(a: &std::path::Path, b: &std::path::Path) -> std::io::Result<()> {\n    let _ = fs::read_to_string(a);\n    fs::rename(a, b)\n}\n// smartlint: allow(checkpoint-write, \"writes the .tmp sibling, then renames over the journal\")\npub fn tmp(p: &std::path::Path) { let _ = fs::write(p, b\"x\"); }\n";
        assert!(
            analyze_source("crates/campaign/src/journal.rs", src).is_empty(),
            "rename/read and the annotated tmp-writer are the sanctioned surface"
        );
    }

    #[test]
    fn taint_paths_carry_the_call_chain() {
        let src = "impl System {\n    pub fn run_epoch(&mut self) { sense(); }\n}\nfn sense() { stamp(); }\nfn stamp() { let _ = std::time::Instant::now(); }\n";
        let f = analyze_source("crates/kernelsim/src/system.rs", src);
        let t1: Vec<&Finding> = f.iter().filter(|x| x.rule == "T1").collect();
        assert_eq!(t1.len(), 1, "one taint path: {f:?}");
        assert_eq!(t1[0].line, 5);
        assert_eq!(
            t1[0].trace.len(),
            3,
            "root -> sense -> stamp: {:?}",
            t1[0].trace
        );
        assert!(t1[0].trace[0].contains("System::run_epoch"));
        assert!(
            f.iter().any(|x| x.rule == "D2" && x.line == 5),
            "base D2 fires too"
        );
    }

    #[test]
    fn native_key_suppression_covers_the_taint_finding() {
        let src = "impl System {\n    pub fn run_epoch(&mut self) {\n        // smartlint: allow(nondeterminism, \"test fixture\")\n        let _ = std::time::Instant::now();\n    }\n}\n";
        let f = analyze_source("crates/kernelsim/src/system.rs", src);
        assert!(f.is_empty(), "one annotation silences D2 and T1: {f:?}");
    }

    #[test]
    fn spawn_outside_sanctioned_pools_is_a_taint_sink() {
        let src = "impl Campaign {\n    pub fn run(&mut self) {\n        std::thread::spawn(|| {});\n    }\n}\n";
        let f = analyze_source("crates/campaign/src/runner.rs", src);
        assert!(
            f.iter().any(|x| x.rule == "T1" && x.line == 3),
            "unsanctioned spawn must taint: {f:?}"
        );
    }
}
