//! Per-rule fixture tests: every rule has one deliberately-bad fixture
//! that must produce exactly the expected findings, and one clean
//! fixture that must produce none.

use smartlint::rules::analyze_source;

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Run a fixture under a virtual workspace path and return `(rule, line)`
/// pairs in source order.
fn findings(name: &str, virtual_path: &str) -> Vec<(String, u32)> {
    analyze_source(virtual_path, &fixture(name))
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn d1_bad_flags_every_escape_of_hash_order() {
    let got = findings("d1_bad.rs", "crates/core/src/sense.rs");
    assert_eq!(
        got,
        vec![("D1".to_string(), 9), ("D1".to_string(), 12)],
        "iter() in a for-loop and keys() must both be flagged"
    );
}

#[test]
fn d1_good_is_clean() {
    assert!(findings("d1_good.rs", "crates/core/src/sense.rs").is_empty());
}

#[test]
fn d2_bad_flags_wall_clock_and_env() {
    let got = findings("d2_bad.rs", "crates/kernelsim/src/system.rs");
    let rules: Vec<&str> = got.iter().map(|(r, _)| r.as_str()).collect();
    assert_eq!(rules, vec!["D2", "D2"], "findings: {got:?}");
    assert_eq!(got[0].1, 4, "Instant::now");
    assert_eq!(got[1].1, 5, "env::var");
}

#[test]
fn d2_good_is_clean() {
    assert!(findings("d2_good.rs", "crates/kernelsim/src/system.rs").is_empty());
}

#[test]
fn n1_bad_flags_bare_numeric_casts() {
    let got = findings("n1_bad.rs", "crates/archsim/src/counters.rs");
    assert_eq!(
        got,
        vec![("N1".to_string(), 4), ("N1".to_string(), 8),],
        "both the float->int and the int->float cast lines must be flagged"
    );
}

#[test]
fn n1_good_is_clean() {
    assert!(findings("n1_good.rs", "crates/archsim/src/counters.rs").is_empty());
}

#[test]
fn n2_bad_flags_f32_in_power_paths() {
    let got = findings("n2_bad.rs", "crates/mcpat/src/model.rs");
    let lines: Vec<u32> = got
        .iter()
        .inspect(|(r, _)| assert_eq!(r, "N2"))
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(lines, vec![5, 8], "struct field and fn signature lines");
}

#[test]
fn n2_good_is_clean() {
    assert!(findings("n2_good.rs", "crates/mcpat/src/model.rs").is_empty());
}

#[test]
fn p1_bad_flags_unwrap_expect_and_panic() {
    let got = findings("p1_bad.rs", "crates/archsim/src/pipeline.rs");
    assert_eq!(
        got,
        vec![
            ("P1".to_string(), 4),
            ("P1".to_string(), 8),
            ("P1".to_string(), 14),
        ]
    );
}

#[test]
fn p1_good_is_clean() {
    assert!(findings("p1_good.rs", "crates/archsim/src/pipeline.rs").is_empty());
}

#[test]
fn h1_bad_flags_missing_headers() {
    let got = findings("h1_bad.rs", "crates/archsim/src/lib.rs");
    assert_eq!(got.len(), 1, "one H1 finding for the root: {got:?}");
    assert_eq!(got[0].0, "H1");
}

#[test]
fn h1_good_is_clean() {
    assert!(findings("h1_good.rs", "crates/archsim/src/lib.rs").is_empty());
}

#[test]
fn c1_bad_flags_every_raw_checkpoint_write() {
    let got = findings("c1_bad.rs", "crates/campaign/src/journal.rs");
    assert_eq!(
        got,
        vec![
            ("C1".to_string(), 6),
            ("C1".to_string(), 10),
            ("C1".to_string(), 14),
            ("C1".to_string(), 18),
        ],
        "File::create, OpenOptions, fs::write and write_all must each be flagged"
    );
}

#[test]
fn c1_good_is_clean() {
    assert!(findings("c1_good.rs", "crates/campaign/src/journal.rs").is_empty());
}

#[test]
fn a0_bad_flags_malformed_annotations() {
    let got = findings("a0_bad.rs", "crates/archsim/src/pipeline.rs");
    assert_eq!(
        got,
        vec![("A0".to_string(), 5), ("A0".to_string(), 10)],
        "missing reason and unknown key must each be an A0 finding"
    );
}

#[test]
fn annotations_suppress_only_their_own_line_and_rule() {
    // The annotation sits on line 2 and covers the unwrap on line 3;
    // the unwrap on line 4 stays flagged.
    let src = "pub fn f(a: Option<u8>, b: Option<u8>) -> u8 {\n    // smartlint: allow(panic, \"a is validated by the caller\")\n    let x = a.unwrap();\n    x + b.unwrap()\n}\n";
    let got: Vec<(String, u32)> = analyze_source("crates/archsim/src/pipeline.rs", src)
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect();
    assert_eq!(got, vec![("P1".to_string(), 4)]);
}

#[test]
fn w1_bad_flags_shared_state_in_worker_closures() {
    let got = findings("w1_bad.rs", "crates/core/src/pool.rs");
    assert_eq!(
        got,
        vec![("W1".to_string(), 10), ("W1".to_string(), 12)],
        "the atomic counter and the lock inside the spawned closure must both be flagged"
    );
}

#[test]
fn w1_good_is_clean() {
    assert!(
        findings("w1_good.rs", "crates/core/src/pool.rs").is_empty(),
        "annotated merge points are the sanctioned surface"
    );
}

#[test]
fn f2_bad_flags_captured_accumulation_in_worker_closures() {
    let got = findings("f2_bad.rs", "crates/core/src/pool.rs");
    assert_eq!(
        got,
        vec![("F2".to_string(), 9), ("F2".to_string(), 19)],
        "compound assignment to a captured f64 and a fold over captured data must both be flagged"
    );
}

#[test]
fn f2_good_is_clean() {
    assert!(
        findings("f2_good.rs", "crates/core/src/pool.rs").is_empty(),
        "closure-local accumulators are fine"
    );
}

#[test]
fn t1_bad_reports_the_root_to_sink_call_path() {
    let all = analyze_source("crates/kernelsim/src/system.rs", &fixture("t1_bad.rs"));
    let got: Vec<(String, u32)> = all.iter().map(|f| (f.rule.clone(), f.line)).collect();
    assert_eq!(
        got,
        vec![("D2".to_string(), 17), ("T1".to_string(), 17)],
        "the sink line carries both the base rule and the taint path"
    );
    let t1 = &all[1];
    assert_eq!(
        t1.trace.len(),
        3,
        "run_epoch -> sense -> stamp: {:?}",
        t1.trace
    );
    assert!(t1.trace[0].contains("System::run_epoch"), "{:?}", t1.trace);
    assert!(t1.trace[1].contains("sense"), "{:?}", t1.trace);
    assert!(t1.trace[2].contains("stamp"), "{:?}", t1.trace);
}

#[test]
fn t1_good_is_clean() {
    assert!(
        findings("t1_good.rs", "crates/kernelsim/src/system.rs").is_empty(),
        "the simulated clock is a pure function of explicit state"
    );
}
