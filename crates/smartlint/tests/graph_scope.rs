//! Scope-derivation soundness, cross-crate taint propagation and
//! analyzer determinism.
//!
//! The headline regression here: before the call graph existed, rule
//! scope for D1/D2/C1 was pinned by hand-maintained path lists (and
//! PR 7/PR 8 each had to grow them by hand). Those lists are deleted;
//! this test re-states them as a historical record and asserts the
//! *derived* scope is a superset, so the migration cannot have shrunk
//! coverage.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

use smartlint::output::{render_json, render_sarif, Report, REPORT_VERSION};
use smartlint::{analyze_file_set, analyze_workspace, Analysis, Baseline, SourceFile};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

fn analyze() -> Analysis {
    analyze_workspace(&workspace_root(), &Baseline::default()).expect("workspace analyzes")
}

/// The D1/D2 path lists smartlint enforced before scope was derived
/// from the call graph, kept verbatim as the coverage floor.
const RETIRED_D_SCOPE: &[&str] = &[
    "crates/archsim/src/",
    "crates/kernelsim/src/",
    "crates/mcpat/src/",
    "crates/workloads/src/",
    "crates/core/src/",
    "crates/smartlint/src/",
    "crates/telemetry/src/",
    "crates/campaign/src/",
];

/// The retired C1 scope: campaign checkpoint code.
const RETIRED_C_SCOPE: &[&str] = &["crates/campaign/src/"];

#[test]
fn derived_scope_is_a_superset_of_the_retired_hand_pinned_lists() {
    let analysis = analyze();
    let scope = &analysis.scope;
    assert!(
        !scope.assume_all,
        "the real workspace must derive scope from its roots, not assume-all"
    );
    for unit in RETIRED_D_SCOPE {
        let probe = format!("{unit}probe.rs");
        assert!(
            scope.d1_applies(&probe),
            "derived D1 scope lost {unit} (was hand-pinned); d_units = {:?}",
            scope.d_units
        );
        assert!(
            scope.d2_applies(&probe),
            "derived D2 scope lost {unit} (was hand-pinned); d_units = {:?}",
            scope.d_units
        );
    }
    for unit in RETIRED_C_SCOPE {
        let probe = format!("{unit}probe.rs");
        assert!(
            scope.c1_applies(&probe),
            "derived C1 scope lost {unit} (was hand-pinned); c_units = {:?}",
            scope.c_units
        );
    }
}

#[test]
fn live_observability_plane_stays_outside_sim_scope() {
    // The obsd HTTP server and its wall-clock uptime timer live on a
    // scrape-serving thread that no simulation root ever calls into.
    // The derived scope must prove that: if obsd ever leaked into the
    // D1/D2 units, the endpoint's `Instant::now()` would (correctly)
    // start failing the determinism rules.
    let analysis = analyze();
    let scope = &analysis.scope;
    assert!(
        !scope.d_units.contains("crates/obsd/src/"),
        "obsd must not be reachable from any simulation root; d_units = {:?}",
        scope.d_units
    );
    assert!(
        !scope.d1_applies("crates/obsd/src/lib.rs"),
        "D1 must not apply to the scrape server"
    );
    assert!(
        !scope.d2_applies("crates/obsd/src/lib.rs"),
        "D2 must not apply to the scrape server (it owns the uptime clock)"
    );
    let obsd_findings: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.file.starts_with("crates/obsd/"))
        .collect();
    assert!(
        obsd_findings.is_empty(),
        "the live plane must lint clean: {obsd_findings:?}"
    );
    assert_eq!(
        analysis.new_findings().count(),
        0,
        "the observability plane introduces no new findings anywhere: {:?}",
        analysis.new_findings().collect::<Vec<_>>()
    );
}

#[test]
fn every_named_simulation_root_is_discovered() {
    let analysis = analyze();
    let roots = &analysis.scope.roots;
    for needle in [
        "System::run_epoch",
        "::rebalance",
        "::run_core_period",
        "SuiteJob::execute",
        "Campaign::run",
        "analyze_workspace",
    ] {
        assert!(
            roots.iter().any(|r| r.contains(needle)),
            "root {needle} missing from {roots:?}"
        );
    }
    assert!(
        roots.iter().filter(|r| r.contains("::rebalance")).count() >= 5,
        "every LoadBalancer impl (gts, iks, sharded, smart, vanilla, null) roots the graph: {roots:?}"
    );
}

#[test]
fn taint_crosses_crate_boundaries_through_lib_name_imports() {
    let files = vec![
        SourceFile {
            path: "crates/kernelsim/src/system.rs".to_string(),
            source: "impl System {\n    pub fn run_epoch(&mut self) { crate::stats::tick(); }\n}\n"
                .to_string(),
        },
        SourceFile {
            path: "crates/kernelsim/src/stats.rs".to_string(),
            source: "pub fn tick() { smartbalance::sense::observe(); }\n".to_string(),
        },
        SourceFile {
            path: "crates/core/src/sense.rs".to_string(),
            source: "pub fn observe() { let _ = std::time::Instant::now(); }\n".to_string(),
        },
    ];
    let mut names = BTreeMap::new();
    names.insert("crates/core/src/".to_string(), "smartbalance".to_string());
    let analysis = analyze_file_set(&files, &names, &Baseline::default());
    let t1: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == "T1")
        .collect();
    assert_eq!(t1.len(), 1, "one taint path: {:?}", analysis.findings);
    assert_eq!(t1[0].file, "crates/core/src/sense.rs");
    assert_eq!(
        t1[0].trace.len(),
        3,
        "run_epoch -> tick -> observe, crossing the kernelsim/core boundary: {:?}",
        t1[0].trace
    );
    assert!(t1[0].trace[0].contains("System::run_epoch"));
    assert!(
        analysis.scope.d2_applies("crates/core/src/whatever.rs"),
        "reachability pulls the core crate into D2 scope"
    );
}

#[test]
fn worker_pool_rules_follow_spawns_across_files() {
    let files = vec![
        SourceFile {
            path: "crates/core/src/pool.rs".to_string(),
            source: "pub fn parallel(count: usize, f: impl Fn(usize)) {\n    std::thread::scope(|s| { s.spawn(|| f(0)); });\n    let _ = count;\n}\n"
                .to_string(),
        },
        SourceFile {
            path: "crates/core/src/user.rs".to_string(),
            source: "use crate::pool::parallel;\npub fn run(shared: &std::sync::Mutex<Vec<u64>>) {\n    parallel(4, |k| {\n        shared.lock().ok();\n        let _ = k;\n    });\n}\n"
                .to_string(),
        },
    ];
    let analysis = analyze_file_set(&files, &BTreeMap::new(), &Baseline::default());
    assert!(
        analysis
            .findings
            .iter()
            .any(|f| f.rule == "W1" && f.file == "crates/core/src/user.rs" && f.line == 4),
        "the closure handed to a spawn-reaching fn in another file is a worker region: {:?}",
        analysis.findings
    );
}

#[test]
fn analyzer_output_is_byte_identical_across_runs() {
    let report = |a: &Analysis| Report {
        version: REPORT_VERSION,
        files_scanned: a.files_scanned,
        roots: a.scope.roots.clone(),
        new_count: a.new_findings().count(),
        baselined_count: a.findings.iter().filter(|f| f.baselined).count(),
        stale_baseline: a.stale_baseline.clone(),
        findings: a.findings.clone(),
    };
    let first = analyze();
    let second = analyze();
    assert_eq!(
        render_json(&report(&first)),
        render_json(&report(&second)),
        "JSON report must be byte-identical across runs"
    );
    assert_eq!(
        render_sarif(&report(&first)),
        render_sarif(&report(&second)),
        "SARIF report must be byte-identical across runs"
    );
}

#[test]
fn stale_baseline_fails_deny_and_prune_clears_it() {
    let tmp = std::env::temp_dir().join("smartlint_stale_baseline_test.json");
    let stale = r#"{"version":1,"entries":[{"rule":"D2","file":"crates/zzz/src/gone.rs","excerpt":"let t = Instant::now();"}]}"#;
    std::fs::write(&tmp, stale).expect("write temp baseline");
    let bin = env!("CARGO_BIN_EXE_smartlint");
    let root = workspace_root();

    let deny = Command::new(bin)
        .args(["--root"])
        .arg(&root)
        .args(["--baseline"])
        .arg(&tmp)
        .args(["--deny"])
        .output()
        .expect("run smartlint --deny");
    assert_eq!(
        deny.status.code(),
        Some(1),
        "a stale baseline entry must fail --deny: {}",
        String::from_utf8_lossy(&deny.stderr)
    );

    let prune = Command::new(bin)
        .args(["--root"])
        .arg(&root)
        .args(["--baseline"])
        .arg(&tmp)
        .args(["--prune-baseline"])
        .output()
        .expect("run smartlint --prune-baseline");
    assert!(
        prune.status.success(),
        "{}",
        String::from_utf8_lossy(&prune.stderr)
    );
    let rewritten = std::fs::read_to_string(&tmp).expect("pruned baseline readable");
    assert!(
        !rewritten.contains("gone.rs"),
        "the stale entry is dropped: {rewritten}"
    );

    let clean = Command::new(bin)
        .args(["--root"])
        .arg(&root)
        .args(["--baseline"])
        .arg(&tmp)
        .args(["--deny"])
        .output()
        .expect("run smartlint --deny after prune");
    assert!(
        clean.status.success(),
        "after pruning, --deny passes: {}",
        String::from_utf8_lossy(&clean.stderr)
    );
    let _ = std::fs::remove_file(&tmp);
}
