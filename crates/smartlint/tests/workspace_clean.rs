//! The self-clean gate: running smartlint over the live workspace with
//! the checked-in baseline must produce zero new findings. This is the
//! same check CI runs via `cargo run -p smartlint -- --deny`.

use smartlint::analyze_workspace;
use smartlint::baseline::Baseline;
use std::path::Path;

#[test]
fn workspace_has_no_unbaselined_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baseline_path = root.join("smartlint.baseline.json");
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", baseline_path.display()));
    let baseline = Baseline::parse(&text).expect("checked-in baseline parses");

    let analysis = analyze_workspace(&root, &baseline).expect("workspace walk succeeds");

    assert!(
        analysis.files_scanned > 20,
        "walker found only {} files — scope bug?",
        analysis.files_scanned
    );
    let fresh: Vec<String> = analysis
        .new_findings()
        .map(|f| format!("{} {}:{} {}", f.rule, f.file, f.line, f.message))
        .collect();
    assert!(
        fresh.is_empty(),
        "workspace is not smartlint-clean:\n{}",
        fresh.join("\n")
    );
    assert!(
        analysis.stale_baseline.is_empty(),
        "baseline has stale entries: {:?}",
        analysis.stale_baseline
    );
}
