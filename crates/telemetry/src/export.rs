//! Exporters: per-epoch JSONL, Chrome `trace_events` JSON and the
//! Prometheus text snapshot (the latter lives on
//! [`crate::MetricsRegistry`]). All output is a pure function of
//! recorded simulation state — byte-identical across reruns.

use crate::span::EpochObs;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One event in Chrome's `trace_events` JSON array format. Serializes
/// directly to the schema `chrome://tracing` and Perfetto load: a bare
/// JSON array of objects with `name`/`cat`/`ph`/`ts`/`dur`/`pid`/`tid`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChromeEvent {
    /// Event name shown on the timeline slice.
    pub name: String,
    /// Comma-free category tag (used for filtering in the viewer).
    pub cat: String,
    /// Phase: `"X"` for complete (duration) events, `"i"` for instants.
    pub ph: String,
    /// Timestamp in microseconds (simulation ns / 1000).
    pub ts: f64,
    /// Duration in microseconds; 0 for instant events.
    pub dur: f64,
    /// Process lane; we use 0 for the control loop, 1 for cores.
    pub pid: u64,
    /// Thread lane within the process (e.g. core index).
    pub tid: u64,
    /// Free-form annotations shown in the event detail pane.
    pub args: BTreeMap<String, String>,
}

impl ChromeEvent {
    /// A complete (`ph:"X"`) event spanning `[start_ns, end_ns]`.
    pub fn complete(name: &str, cat: &str, start_ns: u64, end_ns: u64, pid: u64, tid: u64) -> Self {
        ChromeEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: "X".to_string(),
            ts: ns_to_us(start_ns),
            dur: ns_to_us(end_ns.saturating_sub(start_ns)),
            pid,
            tid,
            args: BTreeMap::new(),
        }
    }

    /// An instant (`ph:"i"`) event at `at_ns`.
    pub fn instant(name: &str, cat: &str, at_ns: u64, pid: u64, tid: u64) -> Self {
        ChromeEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: "i".to_string(),
            ts: ns_to_us(at_ns),
            dur: 0.0,
            pid,
            tid,
            args: BTreeMap::new(),
        }
    }

    /// Adds one `args` annotation and returns the event (builder style).
    pub fn with_arg(mut self, key: &str, value: String) -> Self {
        self.args.insert(key.to_string(), value);
        self
    }
}

/// Simulation nanoseconds → trace microseconds.
pub fn ns_to_us(ns: u64) -> f64 {
    crate::ns_as_f64(ns) / 1000.0
}

/// Serializes events as a Chrome/Perfetto-loadable JSON array.
/// (The array form of the `trace_events` format needs no wrapper
/// object.) Serialization of these plain structs cannot fail; an
/// empty string is returned on the impossible error path.
pub fn chrome_trace_json(events: &[ChromeEvent]) -> String {
    serde_json::to_string(&events.to_vec()).unwrap_or_default()
}

/// Serializes spans as JSONL: one `EpochObs` JSON object per line.
pub fn spans_jsonl(spans: &[EpochObs]) -> String {
    let mut out = String::new();
    for span in spans {
        out.push_str(&serde_json::to_string(span).unwrap_or_default());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_events_serialize_to_trace_schema() {
        let ev = ChromeEvent::complete("epoch 3", "epoch", 1_000, 61_000, 0, 0)
            .with_arg("mode", "full".to_string());
        let json = chrome_trace_json(&[ev]);
        assert!(json.starts_with('['), "bare array format: {json}");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1"));
        assert!(json.contains("\"dur\":60"));
        assert!(json.contains("\"mode\":\"full\""));
        // Round-trips through the JSON parser (well-formed).
        let back: Vec<ChromeEvent> = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let spans = vec![EpochObs::begin(0, 0), EpochObs::begin(1, 60)];
        let text = spans_jsonl(&spans);
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            let _: EpochObs = serde_json::from_str(line).expect("line parses");
        }
    }
}
