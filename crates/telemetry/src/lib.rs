//! # telemetry — deterministic observability for the closed loop
//!
//! SmartBalance is a *sense → predict → balance* feedback loop; this
//! crate is the layer that watches the loop watch the workload. It
//! provides:
//!
//! - a **metrics registry** ([`MetricsRegistry`]): counters, gauges and
//!   fixed-bucket histograms on ordered maps, keyed by pre-rendered
//!   `name{label="value"}` strings;
//! - **epoch spans** ([`EpochObs`]): one record per `run_epoch` with
//!   sense health, degrade rung, annealer trajectory, a rolling
//!   predicted-vs-realized accuracy audit, estimate-cache deltas and
//!   migration churn;
//! - **exporters**: per-epoch JSONL ([`spans_jsonl`]), Chrome
//!   `trace_events` JSON ([`chrome_trace_json`]) and a Prometheus text
//!   snapshot ([`MetricsRegistry::prometheus_text`]).
//!
//! ## Determinism rules
//!
//! Telemetry must never perturb the simulation and must itself be
//! bit-reproducible: **simulation-ns timestamps only** (no
//! `Instant`/`SystemTime` — enforced by smartlint D2, which covers this
//! crate), ordered containers only (D1), and recording is pure
//! accumulation — no sampling, no thresholds that feed back into the
//! loop. The same seeds therefore produce byte-identical JSONL, trace
//! and Prometheus output on every rerun and any worker count.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod export;
pub mod live;
pub mod registry;
pub mod span;

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

pub use export::{chrome_trace_json, ns_to_us, spans_jsonl, ChromeEvent};
pub use live::{CampaignProgress, ObsSnapshot, SnapshotCell};
pub use registry::{labeled, Histogram, MetricsRegistry};
pub use span::EpochObs;

/// The rebalance pipeline stages profiled by [`Telemetry::record_stage`],
/// in pipeline order.
pub const STAGES: &[&str] = &["sense", "predict", "anneal", "exchange", "apply"];

/// Shared handle to one [`Telemetry`] hub. The system and the balancer
/// each hold a clone and borrow it at disjoint points of `run_epoch`
/// (system: epoch start/end and allocation application; balancer:
/// inside `rebalance`), so the `RefCell` borrows never overlap.
pub type TelemetryHandle = Rc<RefCell<Telemetry>>;

/// Creates a fresh hub and returns its shared handle.
pub fn shared() -> TelemetryHandle {
    Rc::new(RefCell::new(Telemetry::new()))
}

/// Relative-error histogram bounds shared by the IPS and power audits.
pub const ERROR_BOUNDS: &[f64] = &[0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0];

/// A one-epoch-ahead prediction for a thread: the core the balancer
/// placed it on plus the model's predicted rates there.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Prediction {
    core: u64,
    ips: f64,
    power_w: f64,
}

/// The telemetry hub: accumulates spans, registry series and the
/// prediction audit for one simulated system.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    registry: MetricsRegistry,
    spans: Vec<EpochObs>,
    span_capacity: Option<usize>,
    dropped_spans: u64,
    current: EpochObs,
    prev_mode: String,
    prev_slices: u64,
    prev_hits: u64,
    prev_misses: u64,
    pending: BTreeMap<u64, Prediction>,
    cur_ips_err_sum: f64,
    cur_power_err_sum: f64,
    audit_samples: u64,
    audit_ips_err_sum: f64,
    audit_power_err_sum: f64,
}

impl Telemetry {
    /// An empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the retained span history at `capacity` epochs, turning the
    /// span store into a flight-recorder ring: once full, closing an
    /// epoch evicts the oldest span and bumps [`Telemetry::dropped_spans`].
    /// Registry series and the prediction audit are unaffected — only
    /// the per-epoch history is bounded. Uncapped by default.
    pub fn set_span_capacity(&mut self, capacity: usize) {
        self.span_capacity = Some(capacity);
        self.evict_over_capacity();
    }

    /// Spans evicted by the capacity ring since attach.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped_spans
    }

    fn evict_over_capacity(&mut self) {
        let Some(cap) = self.span_capacity else {
            return;
        };
        if self.spans.len() > cap {
            let excess = self.spans.len() - cap;
            self.spans.drain(..excess);
            self.dropped_spans += excess as u64;
        }
    }

    /// Credits `work` units to a named rebalance pipeline stage (one of
    /// [`STAGES`]). Stage accounting is deterministic sim-side work
    /// counting — evaluated candidates, annealer iterations, matrix
    /// cells — never wall time. The sense/anneal/exchange/apply stages
    /// are credited internally by their respective `record_*` methods;
    /// balancers credit `predict` explicitly with the number of
    /// predictor-matrix cells they evaluated.
    pub fn record_stage(&mut self, stage: &str, work: u64) {
        if stage == "predict" {
            self.current.stage_predict_cells += work;
        }
        let label = [("stage", stage)];
        self.registry
            .counter_add(&labeled("sb_stage_invocations_total", &label), 1);
        self.registry
            .counter_add(&labeled("sb_stage_work_total", &label), work);
    }

    /// Per-stage invocation and work totals for every profiled stage,
    /// in [`STAGES`] order (all-zero rows included so the schema is
    /// stable across runs and policies).
    pub fn stage_profile(&self) -> Vec<StageProfile> {
        STAGES
            .iter()
            .map(|stage| {
                let label = [("stage", *stage)];
                StageProfile {
                    stage: (*stage).to_string(),
                    invocations: self
                        .registry
                        .counter(&labeled("sb_stage_invocations_total", &label)),
                    work: self
                        .registry
                        .counter(&labeled("sb_stage_work_total", &label)),
                }
            })
            .collect()
    }

    /// Opens the span for `epoch` at simulation time `now_ns`.
    pub fn epoch_start(&mut self, epoch: u64, now_ns: u64) {
        self.current = EpochObs::begin(epoch, now_ns);
        self.cur_ips_err_sum = 0.0;
        self.cur_power_err_sum = 0.0;
    }

    /// Records the sensing phase's health tally for the open span.
    #[allow(clippy::too_many_arguments)]
    pub fn record_sense(
        &mut self,
        candidates: u64,
        fresh: u64,
        invalid: u64,
        replayed: u64,
        expired: u64,
        priors: u64,
        blind: u64,
    ) {
        let c = &mut self.current;
        c.sense_candidates = candidates;
        c.sense_fresh = fresh;
        c.sense_invalid = invalid;
        c.sense_replayed = replayed;
        c.sense_expired = expired;
        c.sense_priors = priors;
        c.sense_blind = blind;
        self.registry
            .counter_add("sb_sense_candidates_total", candidates);
        self.registry.counter_add("sb_sense_blind_total", blind);
        self.registry.counter_add("sb_sense_invalid_total", invalid);
        self.record_stage("sense", candidates);
    }

    /// Records the degrade-ladder rung chosen for the open span.
    /// `transitions_total` is the controller's cumulative rung-change
    /// count; the per-epoch transition flag is derived from the
    /// previously recorded mode.
    pub fn record_degrade(&mut self, mode: &str, rank: u64, transitions_total: u64) {
        let c = &mut self.current;
        c.mode_transition = !self.prev_mode.is_empty() && self.prev_mode != mode;
        c.mode = mode.to_string();
        c.mode_rank = rank;
        c.mode_transitions_total = transitions_total;
        self.prev_mode = mode.to_string();
        self.registry
            .counter_add(&labeled("sb_degrade_epochs_total", &[("mode", mode)]), 1);
        self.registry
            .gauge_set("sb_degrade_rung", rank_as_f64(rank));
        if c.mode_transition {
            self.registry.counter_add("sb_mode_transitions_total", 1);
        }
    }

    /// Records the annealer's outcome for the open span.
    pub fn record_anneal(&mut self, iterations: u64, accepted: u64, initial: f64, objective: f64) {
        let c = &mut self.current;
        c.anneal_ran = true;
        c.anneal_iterations = iterations;
        c.anneal_accepted = accepted;
        c.anneal_initial_objective = initial;
        c.anneal_objective = objective;
        self.registry.counter_add("sb_anneal_epochs_total", 1);
        self.registry
            .counter_add("sb_anneal_iterations_total", iterations);
        self.registry
            .counter_add("sb_anneal_accepted_total", accepted);
        self.registry.gauge_set("sb_anneal_objective", objective);
        self.record_stage("anneal", iterations);
    }

    /// Records one cluster-local annealer's outcome for the open span
    /// (sharded balancer only; one call per non-empty cluster).
    pub fn record_shard_anneal(
        &mut self,
        cluster: u64,
        iterations: u64,
        accepted: u64,
        objective: f64,
    ) {
        self.current.shard_clusters += 1;
        let cluster = cluster.to_string();
        let label = [("cluster", cluster.as_str())];
        self.registry.counter_add(
            &labeled("sb_shard_anneal_iterations_total", &label),
            iterations,
        );
        self.registry
            .counter_add(&labeled("sb_shard_anneal_accepted_total", &label), accepted);
        self.registry
            .gauge_set(&labeled("sb_shard_anneal_objective", &label), objective);
        self.record_stage("anneal", iterations);
    }

    /// Records the sharded balancer's global exchange stage for the
    /// open span: clusters annealed, candidate threads considered and
    /// cross-cluster moves committed.
    pub fn record_shard_exchange(&mut self, clusters: u64, candidates: u64, moves: u64) {
        let c = &mut self.current;
        c.shard_clusters = clusters;
        c.shard_exchange_candidates = candidates;
        c.shard_exchange_moves = moves;
        self.registry.counter_add("sb_shard_epochs_total", 1);
        self.registry
            .counter_add("sb_shard_exchange_candidates_total", candidates);
        self.registry
            .counter_add("sb_shard_exchange_moves_total", moves);
        self.record_stage("exchange", candidates);
    }

    /// Stores the model's one-epoch-ahead prediction for `task`: it was
    /// placed on `core` and is expected to run at `ips` / `power_w`.
    /// Overwrites any unresolved prediction for the same task.
    pub fn record_prediction(&mut self, task: u64, core: u64, ips: f64, power_w: f64) {
        self.pending.insert(task, Prediction { core, ips, power_w });
    }

    /// Resolves a pending prediction against the realized rates for
    /// `task`, now measured on `core`. The sample only counts when the
    /// task actually ran where it was placed (a rejected or re-routed
    /// migration invalidates the prediction) and both realized rates
    /// are positive. Pending entries are consumed either way.
    pub fn resolve_prediction(&mut self, task: u64, core: u64, ips: f64, power_w: f64) {
        let Some(pred) = self.pending.remove(&task) else {
            return;
        };
        let usable = ips.is_finite() && power_w.is_finite() && ips > 0.0 && power_w > 0.0;
        if pred.core != core || !usable {
            return;
        }
        let ips_err = (pred.ips - ips).abs() / ips;
        let power_err = (pred.power_w - power_w).abs() / power_w;
        self.current.audit_samples += 1;
        self.cur_ips_err_sum += ips_err;
        self.cur_power_err_sum += power_err;
        self.audit_samples += 1;
        self.audit_ips_err_sum += ips_err;
        self.audit_power_err_sum += power_err;
        self.registry
            .histogram_observe("sb_prediction_abs_rel_error_ips", ERROR_BOUNDS, ips_err);
        self.registry.histogram_observe(
            "sb_prediction_abs_rel_error_power",
            ERROR_BOUNDS,
            power_err,
        );
    }

    /// Records the outcome of applying an allocation: `requested`
    /// entries, `migrated` moves performed, and per-reason rejection
    /// counts as `(reason, count)` pairs in a fixed order.
    pub fn record_apply(&mut self, requested: u64, migrated: u64, rejected: &[(&str, u64)]) {
        let c = &mut self.current;
        c.alloc_requested += requested;
        c.migrated += migrated;
        self.registry
            .counter_add("sb_alloc_requested_total", requested);
        self.registry.counter_add("sb_migrations_total", migrated);
        for (reason, count) in rejected {
            if *count == 0 {
                continue;
            }
            c.rejected += count;
            self.registry.counter_add(
                &labeled("sb_migrations_rejected_total", &[("reason", reason)]),
                *count,
            );
        }
        self.record_stage("apply", requested);
    }

    /// Registers every campaign lifecycle counter at zero. Called once
    /// at run start so the very first `/metrics` scrape already
    /// exposes the full `sb_campaign_*` series set — scrapers never
    /// have to distinguish "no cells resolved yet" from "counter does
    /// not exist".
    pub fn record_campaign_started(&mut self) {
        for key in [
            "sb_campaign_completed_total",
            "sb_campaign_quarantined_total",
            "sb_campaign_retried_total",
            "sb_campaign_resumed_total",
        ] {
            self.registry.counter_add(key, 0);
        }
    }

    /// Records a campaign cell that ran to completion, after
    /// `attempts` total tries (1 = first-try success). Campaign events
    /// sit above the per-epoch span model, so these touch only the
    /// counter registry.
    pub fn record_campaign_completed(&mut self, attempts: u64) {
        self.registry.counter_add("sb_campaign_completed_total", 1);
        if attempts > 1 {
            self.registry
                .counter_add("sb_campaign_retried_total", attempts - 1);
        }
    }

    /// Records a campaign cell quarantined after exhausting its retry
    /// ladder with `attempts` failed tries.
    pub fn record_campaign_quarantined(&mut self, attempts: u64) {
        self.registry
            .counter_add("sb_campaign_quarantined_total", 1);
        if attempts > 1 {
            self.registry
                .counter_add("sb_campaign_retried_total", attempts - 1);
        }
    }

    /// Records `cells` campaign cells skipped on resume because the
    /// checkpoint journal already carried their outcomes.
    pub fn record_campaign_resumed(&mut self, cells: u64) {
        self.registry
            .counter_add("sb_campaign_resumed_total", cells);
    }

    /// Closes the open span at simulation time `now_ns`. The cumulative
    /// slice and estimate-cache totals are diffed against the previous
    /// close to produce per-epoch deltas.
    pub fn epoch_end(&mut self, now_ns: u64, slices: u64, cache_hits: u64, cache_misses: u64) {
        let c = &mut self.current;
        c.end_ns = now_ns;
        c.slices = slices.saturating_sub(self.prev_slices);
        c.cache_hits = cache_hits.saturating_sub(self.prev_hits);
        c.cache_misses = cache_misses.saturating_sub(self.prev_misses);
        self.prev_slices = slices;
        self.prev_hits = cache_hits;
        self.prev_misses = cache_misses;
        if c.audit_samples > 0 {
            c.audit_mean_abs_ips_err = self.cur_ips_err_sum / count_as_f64(c.audit_samples);
            c.audit_mean_abs_power_err = self.cur_power_err_sum / count_as_f64(c.audit_samples);
        }
        self.registry.counter_add("sb_epochs_total", 1);
        self.registry.counter_add("sb_slices_total", c.slices);
        self.registry
            .counter_add("sb_estimate_cache_hits_total", c.cache_hits);
        self.registry
            .counter_add("sb_estimate_cache_misses_total", c.cache_misses);
        let finished = std::mem::take(&mut self.current);
        self.spans.push(finished);
        self.evict_over_capacity();
    }

    /// Every closed span, in epoch order.
    pub fn spans(&self) -> &[EpochObs] {
        &self.spans
    }

    /// The metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Per-epoch JSONL stream (one `EpochObs` object per line).
    pub fn jsonl(&self) -> String {
        spans_jsonl(&self.spans)
    }

    /// Chrome `trace_events` for the closed spans: one `"X"` lane-0
    /// event per epoch, annotated with mode, audit and churn figures.
    pub fn chrome_spans(&self) -> Vec<ChromeEvent> {
        self.spans
            .iter()
            .map(|s| {
                let name = format!("epoch {}", s.epoch);
                let mut ev = ChromeEvent::complete(&name, "epoch", s.start_ns, s.end_ns, 0, 0);
                if !s.mode.is_empty() {
                    ev = ev.with_arg("mode", s.mode.clone());
                }
                ev.with_arg("slices", s.slices.to_string())
                    .with_arg("audit_samples", s.audit_samples.to_string())
                    .with_arg("migrated", s.migrated.to_string())
                    .with_arg("rejected", s.rejected.to_string())
            })
            .collect()
    }

    /// Controller-health summary over every closed span.
    pub fn summary(&self) -> ObsSummary {
        let epochs = self.spans.len() as u64;
        let mut anneal_epochs = 0u64;
        let mut anneal_improved = 0u64;
        let mut mode_epochs = 0u64;
        let mut degrade_epochs = 0u64;
        let mut transitions = 0u64;
        let mut migrations = 0u64;
        let mut rejected = 0u64;
        let mut hits = 0u64;
        let mut misses = 0u64;
        for s in &self.spans {
            if s.anneal_ran {
                anneal_epochs += 1;
                if s.anneal_objective > s.anneal_initial_objective {
                    anneal_improved += 1;
                }
            }
            if !s.mode.is_empty() {
                mode_epochs += 1;
                if s.mode != "full" {
                    degrade_epochs += 1;
                }
            }
            if s.mode_transition {
                transitions += 1;
            }
            migrations += s.migrated;
            rejected += s.rejected;
            hits += s.cache_hits;
            misses += s.cache_misses;
        }
        ObsSummary {
            epochs,
            prediction_samples: self.audit_samples,
            mean_abs_ips_error: mean(self.audit_ips_err_sum, self.audit_samples),
            mean_abs_power_error: mean(self.audit_power_err_sum, self.audit_samples),
            anneal_epochs,
            anneal_convergence_rate: ratio(anneal_improved, anneal_epochs),
            degrade_epochs,
            degrade_epoch_fraction: ratio(degrade_epochs, mode_epochs),
            mode_transitions: transitions,
            migrations,
            rejected_migrations: rejected,
            cache_hit_rate: ratio(hits, hits + misses),
        }
    }

    /// Snapshot bundle for embedding in suite reports.
    pub fn capture(&self) -> ObsCapture {
        ObsCapture {
            summary: self.summary(),
            jsonl: self.jsonl(),
            prometheus: self.registry.prometheus_text(),
        }
    }
}

/// Deterministic work accounting for one rebalance pipeline stage —
/// one row per [`STAGES`] entry in `BENCH_obs.json`'s stage profile.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageProfile {
    /// Stage name (`sense`, `predict`, `anneal`, `exchange`, `apply`).
    pub stage: String,
    /// Times the stage was credited work.
    pub invocations: u64,
    /// Stage-specific work units: sense candidates, predictor-matrix
    /// cells, annealer iterations, exchange candidates, apply requests.
    pub work: u64,
}

/// Controller-health figures aggregated over a run — the payload CI
/// tracks in `BENCH_obs.json`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObsSummary {
    /// Closed epoch spans.
    pub epochs: u64,
    /// Predicted-vs-realized samples resolved over the run.
    pub prediction_samples: u64,
    /// Mean |relative IPS prediction error| over all samples.
    pub mean_abs_ips_error: f64,
    /// Mean |relative power prediction error| over all samples.
    pub mean_abs_power_error: f64,
    /// Epochs in which the annealer ran.
    pub anneal_epochs: u64,
    /// Fraction of anneal epochs that improved on the initial objective.
    pub anneal_convergence_rate: f64,
    /// Epochs spent below the full-capability rung.
    pub degrade_epochs: u64,
    /// `degrade_epochs` over epochs where a rung was reported.
    pub degrade_epoch_fraction: f64,
    /// Per-epoch rung changes observed.
    pub mode_transitions: u64,
    /// Balancer migrations performed.
    pub migrations: u64,
    /// Balancer migrations rejected.
    pub rejected_migrations: u64,
    /// Estimate-cache hit rate over the observed epochs.
    pub cache_hit_rate: f64,
}

/// A serializable observability bundle: summary plus the JSONL and
/// Prometheus exports, ready to embed in a `SuiteReport`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObsCapture {
    /// Aggregated controller-health figures.
    pub summary: ObsSummary,
    /// Per-epoch JSONL stream.
    pub jsonl: String,
    /// Prometheus text snapshot.
    pub prometheus: String,
}

/// `sum / n`, or 0 when `n` is 0.
fn mean(sum: f64, n: u64) -> f64 {
    if n == 0 {
        0.0
    } else {
        sum / count_as_f64(n)
    }
}

/// `num / den` as a fraction, or 0 when `den` is 0.
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        count_as_f64(num) / count_as_f64(den)
    }
}

/// Widens an event count for averaging (exact below 2^53).
fn count_as_f64(n: u64) -> f64 {
    n as f64
}

/// Widens a rung rank for the gauge.
fn rank_as_f64(rank: u64) -> f64 {
    rank as f64
}

/// Widens simulation nanoseconds for µs conversion (exact below 2^53).
pub(crate) fn ns_as_f64(ns: u64) -> f64 {
    ns as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_two_epochs(t: &mut Telemetry) {
        t.epoch_start(0, 0);
        t.record_sense(4, 4, 0, 0, 0, 0, 0);
        t.record_degrade("full", 0, 0);
        t.record_anneal(100, 20, 1.0, 1.5);
        t.record_prediction(7, 2, 100.0, 1.0);
        t.record_apply(4, 2, &[("offline_core", 1)]);
        t.epoch_end(60, 10, 6, 4);

        t.epoch_start(1, 60);
        t.record_degrade("predict-free", 1, 1);
        t.resolve_prediction(7, 2, 80.0, 1.1);
        t.epoch_end(120, 25, 16, 8);
    }

    #[test]
    fn spans_capture_phases_and_deltas() {
        let mut t = Telemetry::new();
        run_two_epochs(&mut t);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].slices, 10);
        assert_eq!(spans[1].slices, 15, "second span is a delta");
        assert_eq!(spans[1].cache_hits, 10);
        assert!(spans[0].anneal_ran);
        assert_eq!(spans[0].rejected, 1);
        assert!(!spans[0].mode_transition);
        assert!(spans[1].mode_transition, "full → predict-free");
        assert_eq!(spans[1].audit_samples, 1);
        assert!((spans[1].audit_mean_abs_ips_err - 0.25).abs() < 1e-12);
    }

    #[test]
    fn summary_aggregates_controller_health() {
        let mut t = Telemetry::new();
        run_two_epochs(&mut t);
        let s = t.summary();
        assert_eq!(s.epochs, 2);
        assert_eq!(s.prediction_samples, 1);
        assert!((s.mean_abs_ips_error - 0.25).abs() < 1e-12);
        assert_eq!(s.anneal_epochs, 1);
        assert!((s.anneal_convergence_rate - 1.0).abs() < 1e-12);
        assert_eq!(s.degrade_epochs, 1);
        assert!((s.degrade_epoch_fraction - 0.5).abs() < 1e-12);
        assert_eq!(s.mode_transitions, 1);
        assert_eq!(s.migrations, 2);
        assert_eq!(s.rejected_migrations, 1);
    }

    #[test]
    fn campaign_counters_accumulate() {
        let mut t = Telemetry::new();
        t.record_campaign_completed(1); // first-try success: no retries
        t.record_campaign_completed(3); // succeeded on the third try
        t.record_campaign_quarantined(4); // gave up after four tries
        t.record_campaign_resumed(7);
        let text = t.registry().prometheus_text();
        assert!(text.contains("sb_campaign_completed_total 2"), "{text}");
        assert!(text.contains("sb_campaign_retried_total 5"), "{text}");
        assert!(text.contains("sb_campaign_quarantined_total 1"), "{text}");
        assert!(text.contains("sb_campaign_resumed_total 7"), "{text}");
    }

    #[test]
    fn stage_profile_accumulates_pipeline_work() {
        let mut t = Telemetry::new();
        run_two_epochs(&mut t);
        t.record_stage("predict", 16);
        let profile = t.stage_profile();
        let names: Vec<&str> = profile.iter().map(|p| p.stage.as_str()).collect();
        assert_eq!(names, STAGES, "stable row order, zero rows included");
        let by_name = |n: &str| {
            profile
                .iter()
                .find(|p| p.stage == n)
                .expect("stage present")
                .clone()
        };
        assert_eq!(by_name("sense").work, 4, "sense work = candidates");
        assert_eq!(by_name("anneal").work, 100, "anneal work = iterations");
        assert_eq!(by_name("predict").work, 16);
        assert_eq!(by_name("predict").invocations, 1);
        assert_eq!(by_name("apply").work, 4, "apply work = requested");
        assert_eq!(by_name("exchange").work, 0, "flat run: exchange idle");
        let text = t.registry().prometheus_text();
        assert!(
            text.contains("sb_stage_work_total{stage=\"anneal\"} 100"),
            "{text}"
        );
    }

    #[test]
    fn span_capacity_turns_history_into_a_ring() {
        let mut t = Telemetry::new();
        t.set_span_capacity(2);
        for epoch in 0..5 {
            t.epoch_start(epoch, epoch * 60);
            t.epoch_end(epoch * 60 + 60, 0, 0, 0);
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 2, "ring holds the newest N spans");
        assert_eq!(spans[0].epoch, 3);
        assert_eq!(spans[1].epoch, 4);
        assert_eq!(t.dropped_spans(), 3);
        let text = t.registry().prometheus_text();
        assert!(
            text.contains("sb_epochs_total 5"),
            "registry series stay cumulative: {text}"
        );
    }

    #[test]
    fn mismatched_core_invalidates_prediction() {
        let mut t = Telemetry::new();
        t.epoch_start(0, 0);
        t.record_prediction(3, 1, 50.0, 0.5);
        t.epoch_end(60, 0, 0, 0);
        t.epoch_start(1, 60);
        // Task 3 ended up on core 0 (migration rejected) — no sample.
        t.resolve_prediction(3, 0, 50.0, 0.5);
        t.epoch_end(120, 0, 0, 0);
        assert_eq!(t.summary().prediction_samples, 0);
    }

    #[test]
    fn exports_are_deterministic_across_reruns() {
        let mut a = Telemetry::new();
        let mut b = Telemetry::new();
        run_two_epochs(&mut a);
        run_two_epochs(&mut b);
        assert_eq!(a.jsonl(), b.jsonl());
        assert_eq!(
            a.registry().prometheus_text(),
            b.registry().prometheus_text()
        );
        assert_eq!(
            chrome_trace_json(&a.chrome_spans()),
            chrome_trace_json(&b.chrome_spans())
        );
        assert_eq!(a.capture(), b.capture());
    }
}
