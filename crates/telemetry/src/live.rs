//! Live snapshot plumbing between the campaign runner and the
//! observability daemon (`obsd`).
//!
//! The campaign runner is the *producer*: after every finished cell and
//! every journal flush it assembles an [`ObsSnapshot`] (progress
//! figures + a rendered Prometheus text page) and [`SnapshotCell::publish`]es
//! it. The HTTP server in `crates/obsd` is the *consumer*: each request
//! handler calls [`SnapshotCell::latest`] and serves whatever was most
//! recently published. The cell holds an `Arc` swap behind a `Mutex`
//! whose critical section is a single pointer clone/store, so the
//! simulation side never blocks on the network side — a slow or stalled
//! scraper can at worst hold a stale `Arc` alive.
//!
//! Everything in this module is deterministic: snapshots are pure
//! functions of recorded campaign state (the only wall-clock input,
//! `wall_s_sum`, is the same sanctioned execution metadata that
//! `CampaignReport::canonicalized` zeroes before fingerprinting).
//! Wall-clock *reads* live exclusively in `obsd`, outside the
//! graph-derived simulation scope.

use serde::Serialize;
use std::sync::{Arc, Mutex, PoisonError};

/// Progress of a running campaign, as served by `GET /progress`.
///
/// Counter fields mirror the `sb_campaign_*` registry series; journal
/// fields describe the checkpoint stream; `eta_s` is derived from
/// completed-cell wall times by [`CampaignProgress::finalize_eta`].
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct CampaignProgress {
    /// Total cells in the grid.
    pub cells_total: u64,
    /// Cells completed so far (including resumed ones).
    pub cells_completed: u64,
    /// Cells quarantined so far (including resumed ones).
    pub cells_quarantined: u64,
    /// Cells not yet resolved.
    pub cells_pending: u64,
    /// Cells skipped on resume because the journal carried outcomes.
    pub resumed_cells: u64,
    /// Cells executed by this process (excludes resumed cells).
    pub executed_this_run: u64,
    /// Retries spent across all executed cells.
    pub retries_total: u64,
    /// Ids of the cells in the batch currently executing.
    pub current_cells: Vec<String>,
    /// Id of the most recently resolved cell (empty before the first).
    pub last_cell_id: String,
    /// Journal flushes performed by this process.
    pub journal_flushes: u64,
    /// Bytes written by the most recent journal flush.
    pub journal_bytes_last: u64,
    /// Records held in the journal at the last flush.
    pub journal_records: u64,
    /// Malformed journal lines tolerated while resuming.
    pub journal_skipped_lines: u64,
    /// Sum of wall-clock seconds over cells completed by this process.
    pub wall_s_sum: f64,
    /// Number of cells contributing to `wall_s_sum`.
    pub wall_cells: u64,
    /// Estimated seconds of work remaining (0 until a cell completes).
    pub eta_s: f64,
}

impl CampaignProgress {
    /// Derives `eta_s` as mean completed-cell wall time × pending
    /// cells. Call after the wall/pending fields are filled in.
    pub fn finalize_eta(&mut self) {
        if self.wall_cells > 0 {
            let mean_wall = self.wall_s_sum / cells_as_f64(self.wall_cells);
            self.eta_s = mean_wall * cells_as_f64(self.cells_pending);
        }
    }
}

/// One published observation: the progress payload plus the Prometheus
/// text page rendered from the campaign hub's registry at publish time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsSnapshot {
    /// Campaign progress, serialized into `GET /progress`.
    pub progress: CampaignProgress,
    /// Prometheus text exposition, served verbatim by `GET /metrics`.
    pub prometheus: String,
}

/// The single-slot mailbox the runner publishes [`ObsSnapshot`]s into.
///
/// `publish` and `latest` each hold the lock only long enough to swap
/// or clone one `Arc`; readers keep the previous snapshot alive for as
/// long as they need without blocking the writer.
#[derive(Debug, Default)]
pub struct SnapshotCell {
    slot: Mutex<Arc<ObsSnapshot>>,
}

impl SnapshotCell {
    /// An empty cell holding a default (all-zero) snapshot.
    pub fn fresh() -> Self {
        SnapshotCell::default()
    }

    /// Replaces the published snapshot.
    pub fn publish(&self, snapshot: ObsSnapshot) {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        *slot = Arc::new(snapshot);
    }

    /// The most recently published snapshot.
    pub fn latest(&self) -> Arc<ObsSnapshot> {
        Arc::clone(&self.slot.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

/// Widens a cell count for averaging (exact below 2^53).
fn cells_as_f64(n: u64) -> f64 {
    n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latest_returns_the_most_recent_publication() {
        let cell = SnapshotCell::fresh();
        assert_eq!(cell.latest().progress.cells_total, 0);
        let mut snap = ObsSnapshot::default();
        snap.progress.cells_total = 6;
        snap.progress.cells_completed = 2;
        snap.prometheus = "sb_campaign_completed_total 2\n".to_string();
        cell.publish(snap.clone());
        let latest = cell.latest();
        assert_eq!(*latest, snap);
        snap.progress.cells_completed = 3;
        cell.publish(snap.clone());
        assert_eq!(cell.latest().progress.cells_completed, 3);
        assert_eq!(latest.progress.cells_completed, 2, "old Arc stays valid");
    }

    #[test]
    fn eta_is_mean_wall_time_times_pending() {
        let mut p = CampaignProgress {
            cells_pending: 4,
            wall_s_sum: 6.0,
            wall_cells: 3,
            ..CampaignProgress::default()
        };
        p.finalize_eta();
        assert!((p.eta_s - 8.0).abs() < 1e-12);
        let mut empty = CampaignProgress::default();
        empty.finalize_eta();
        assert!(empty.eta_s.abs() < 1e-12, "no completed cells → eta 0");
    }

    #[test]
    fn progress_serializes_every_field() {
        let p = CampaignProgress {
            cells_total: 6,
            current_cells: vec!["cell-a".to_string()],
            ..CampaignProgress::default()
        };
        let json = serde_json::to_string(&p).expect("progress serializes");
        assert!(json.contains("\"cells_total\":6"), "{json}");
        assert!(json.contains("\"current_cells\""), "{json}");
        assert!(json.contains("\"eta_s\""), "{json}");
    }
}
