//! Deterministic metrics registry: counters, gauges and fixed-bucket
//! histograms keyed by pre-rendered `name{label="value"}` strings.
//!
//! Every container is a [`BTreeMap`], so iteration order — and
//! therefore every exporter's byte stream — is a pure function of the
//! recorded values. No interior mutability, no wall clock, no hashing.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders a metric key from a static name and a label set, e.g.
/// `labeled("sb_migrations_rejected_total", &[("reason", "offline_core")])`
/// → `sb_migrations_rejected_total{reason="offline_core"}`.
///
/// Labels are emitted in the order given; callers pass them in a fixed
/// order so the same logical series always maps to the same key.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut key = String::with_capacity(name.len() + 16 * labels.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        let _ = write!(key, "{k}=\"{v}\"");
    }
    key.push('}');
    key
}

/// A fixed-bucket histogram: bucket upper bounds are chosen at first
/// observation and never change, so counts are reproducible regardless
/// of observation order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive upper bounds, ascending. `counts` has one extra slot
    /// for observations above the last bound (the `+Inf` bucket).
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// A histogram with the given ascending inclusive upper bounds.
    pub fn with_bounds(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one observation. Non-finite values land in the `+Inf`
    /// bucket but are excluded from `sum` to keep it finite.
    pub fn observe(&mut self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        if let Some(c) = self.counts.get_mut(slot) {
            *c += 1;
        }
        self.count += 1;
        if value.is_finite() {
            self.sum += value;
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all finite observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// `(upper_bound, cumulative_count)` pairs in Prometheus bucket
    /// convention; the final `+Inf` bucket is implicit (== `count`).
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut acc = 0u64;
        self.bounds
            .iter()
            .zip(self.counts.iter())
            .map(|(b, c)| {
                acc += c;
                (*b, acc)
            })
            .collect()
    }
}

/// The registry: three ordered namespaces (counters, gauges,
/// histograms). Keys are rendered with [`labeled`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter at `key`, creating it at zero first.
    pub fn counter_add(&mut self, key: &str, delta: u64) {
        *self.counters.entry(key.to_string()).or_insert(0) += delta;
    }

    /// Sets the gauge at `key` to `value` (last write wins).
    pub fn gauge_set(&mut self, key: &str, value: f64) {
        self.gauges.insert(key.to_string(), value);
    }

    /// Observes `value` in the histogram at `key`, creating it with
    /// `bounds` on first use. Later calls ignore `bounds`.
    pub fn histogram_observe(&mut self, key: &str, bounds: &[f64], value: f64) {
        self.histograms
            .entry(key.to_string())
            .or_insert_with(|| Histogram::with_bounds(bounds))
            .observe(value);
    }

    /// Current counter value (0 when never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Current gauge value, if set.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// The histogram at `key`, if any observation was recorded.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Prometheus text-exposition snapshot. Series appear in sorted key
    /// order; histograms expand to cumulative `_bucket{le=...}` lines
    /// plus `_sum` and `_count`. Byte-deterministic for a given state.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for (key, value) in &self.counters {
            let _ = writeln!(out, "{key} {value}");
        }
        for (key, value) in &self.gauges {
            let _ = writeln!(out, "{key} {value}");
        }
        for (key, hist) in &self.histograms {
            for (bound, cumulative) in hist.cumulative_buckets() {
                let _ = writeln!(out, "{key}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{key}_bucket{{le=\"+Inf\"}} {}", hist.count());
            let _ = writeln!(out, "{key}_sum {}", hist.sum());
            let _ = writeln!(out, "{key}_count {}", hist.count());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_renders_keys() {
        assert_eq!(labeled("sb_epochs_total", &[]), "sb_epochs_total");
        assert_eq!(
            labeled("sb_x", &[("reason", "offline_core"), ("mode", "full")]),
            "sb_x{reason=\"offline_core\",mode=\"full\"}"
        );
    }

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let mut h = Histogram::with_bounds(&[0.1, 0.5, 1.0]);
        h.observe(0.1); // first bucket (inclusive)
        h.observe(0.3);
        h.observe(2.0); // +Inf overflow
        h.observe(f64::NAN); // +Inf, excluded from sum
        assert_eq!(h.count(), 4);
        assert_eq!(h.cumulative_buckets(), vec![(0.1, 1), (0.5, 2), (1.0, 2)]);
        assert!((h.sum() - 2.4).abs() < 1e-12);
    }

    #[test]
    fn prometheus_text_is_sorted_and_stable() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("sb_b_total", 2);
        reg.counter_add("sb_a_total", 1);
        reg.gauge_set("sb_rung", 1.0);
        reg.histogram_observe("sb_err", &[0.5], 0.25);
        let text = reg.prometheus_text();
        let again = reg.clone().prometheus_text();
        assert_eq!(text, again);
        let a = text.find("sb_a_total 1").expect("a present");
        let b = text.find("sb_b_total 2").expect("b present");
        assert!(a < b, "counters sorted");
        assert!(text.contains("sb_err_bucket{le=\"0.5\"} 1"));
        assert!(text.contains("sb_err_count 1"));
    }
}
