//! Epoch spans: one [`EpochObs`] record per `System::run_epoch`,
//! covering every phase of the closed loop (sense health, degrade
//! rung, annealer trajectory, prediction audit, cache and migration
//! activity). All timestamps are simulation nanoseconds.

use serde::{Deserialize, Serialize};

/// Everything observed during one epoch of the closed loop.
///
/// Counter-style fields are per-epoch deltas unless suffixed `_total`
/// (cumulative since attach). Fields the balancer never reported stay
/// at their defaults — e.g. `mode` is empty under a non-SmartBalance
/// policy and `anneal_ran` is false on degraded epochs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EpochObs {
    /// Epoch index (matches `EpochReport::epoch`).
    pub epoch: u64,
    /// Simulation time when the epoch began, in ns.
    pub start_ns: u64,
    /// Simulation time when the epoch ended, in ns.
    pub end_ns: u64,
    /// Slices executed during this epoch.
    pub slices: u64,
    /// Estimate-cache hits during this epoch.
    pub cache_hits: u64,
    /// Estimate-cache misses during this epoch.
    pub cache_misses: u64,

    /// Threads the sensor considered this epoch.
    pub sense_candidates: u64,
    /// Threads with fresh, sane counter signatures.
    pub sense_fresh: u64,
    /// Threads whose signatures failed sanity validation.
    pub sense_invalid: u64,
    /// Threads served from last-good signature replay.
    pub sense_replayed: u64,
    /// Threads whose replayed signature exceeded its TTL.
    pub sense_expired: u64,
    /// Threads that fell back to the neutral prior.
    pub sense_priors: u64,
    /// Threads that ran but produced no usable signal.
    pub sense_blind: u64,

    /// Degrade-ladder rung name (`full`, `predict-free`, `load-only`);
    /// empty when the policy reported no mode.
    pub mode: String,
    /// Degrade-ladder rung rank (0 = full capability).
    pub mode_rank: u64,
    /// True when the rung changed relative to the previous epoch.
    pub mode_transition: bool,
    /// Cumulative rung changes since the controller was constructed.
    pub mode_transitions_total: u64,

    /// True when the simulated annealer ran this epoch.
    pub anneal_ran: bool,
    /// Annealer iterations executed.
    pub anneal_iterations: u64,
    /// Annealer moves accepted.
    pub anneal_accepted: u64,
    /// Objective of the initial (current) allocation.
    pub anneal_initial_objective: f64,
    /// Objective of the returned allocation.
    pub anneal_objective: f64,

    /// Predictor-matrix cells evaluated this epoch (threads × cores
    /// summed over whatever problems the balancer solved; 0 when the
    /// predict stage was skipped or degraded away).
    pub stage_predict_cells: u64,

    /// Clusters annealed this epoch (0 under the flat balancer).
    pub shard_clusters: u64,
    /// Cross-cluster exchange candidates considered this epoch.
    pub shard_exchange_candidates: u64,
    /// Cross-cluster exchange moves committed this epoch.
    pub shard_exchange_moves: u64,

    /// Predicted-vs-realized samples resolved this epoch.
    pub audit_samples: u64,
    /// Mean |relative IPS prediction error| over this epoch's samples.
    pub audit_mean_abs_ips_err: f64,
    /// Mean |relative power prediction error| over this epoch's samples.
    pub audit_mean_abs_power_err: f64,

    /// Allocation entries the balancer requested be applied.
    pub alloc_requested: u64,
    /// Migrations actually performed.
    pub migrated: u64,
    /// Migrations rejected (all reasons).
    pub rejected: u64,
}

impl EpochObs {
    /// A fresh span for `epoch` starting at `start_ns`.
    pub fn begin(epoch: u64, start_ns: u64) -> Self {
        EpochObs {
            epoch,
            start_ns,
            end_ns: start_ns,
            ..EpochObs::default()
        }
    }

    /// Span duration in simulation nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}
