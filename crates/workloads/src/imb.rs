//! Interactive micro-benchmarks (IMB), paper Section 6.
//!
//! "Sets of multithreaded synthetic benchmarks ... that provide the
//! ability to control the load, phasic behavior, and interactivity
//! (sleep and wait periods). The IMBs can be configured to have
//! throughput (T) and interactivity (I) ... for high (H), medium (M),
//! and low (L) values" — e.g. `HTHI` is high-throughput /
//! high-interactivity.

use std::fmt;

use archsim::WorkloadCharacteristics;
use serde::{Deserialize, Serialize};

use crate::profile::{Phase, SleepPattern, WorkloadProfile};

/// A high/medium/low level for a throughput or interactivity axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Level {
    /// High.
    High,
    /// Medium.
    Medium,
    /// Low.
    Low,
}

impl Level {
    /// All three levels, high first.
    pub const ALL: [Level; 3] = [Level::High, Level::Medium, Level::Low];

    fn letter(self) -> char {
        match self {
            Level::High => 'H',
            Level::Medium => 'M',
            Level::Low => 'L',
        }
    }
}

/// Configuration of one IMB: a throughput level and an interactivity
/// level, named like the paper (`HTHI`, `MTLI`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ImbConfig {
    /// Demanded throughput level (controls compute intensity / ILP).
    pub throughput: Level,
    /// Interactivity level (controls sleep/wait share).
    pub interactivity: Level,
}

impl ImbConfig {
    /// Creates a config.
    pub fn new(throughput: Level, interactivity: Level) -> Self {
        ImbConfig {
            throughput,
            interactivity,
        }
    }

    /// All nine T×I combinations (the paper's Fig. 4(a) x-axis),
    /// ordered `HTHI, HTMI, ..., LTLI`.
    pub fn all_nine() -> Vec<ImbConfig> {
        let mut v = Vec::with_capacity(9);
        for t in Level::ALL {
            for i in Level::ALL {
                v.push(ImbConfig::new(t, i));
            }
        }
        v
    }

    /// Paper-style name like `"HTHI"`.
    pub fn name(&self) -> String {
        format!(
            "{}T{}I",
            self.throughput.letter(),
            self.interactivity.letter()
        )
    }

    /// Builds the workload profile for this configuration.
    ///
    /// Throughput controls the compute intensity of the bursts (high =
    /// ILP-rich cache-friendly kernel that benefits from big cores; low
    /// = lean, memory-touched loop that does not). Interactivity
    /// controls how much of wall-clock time is spent sleeping between
    /// bursts (high = mostly waiting, like UI / IO-driven threads).
    pub fn profile(&self) -> WorkloadProfile {
        let characteristics = match self.throughput {
            Level::High => WorkloadCharacteristics {
                ilp: 5.5,
                mem_share: 0.20,
                branch_share: 0.08,
                data_working_set_kib: 32.0,
                code_working_set_kib: 12.0,
                branch_entropy: 0.10,
                data_pages: 48.0,
                code_pages: 8.0,
                mlp: 3.5,
            },
            Level::Medium => WorkloadCharacteristics {
                ilp: 2.8,
                mem_share: 0.32,
                branch_share: 0.15,
                data_working_set_kib: 128.0,
                code_working_set_kib: 24.0,
                branch_entropy: 0.30,
                data_pages: 192.0,
                code_pages: 16.0,
                mlp: 2.2,
            },
            Level::Low => WorkloadCharacteristics {
                ilp: 1.4,
                mem_share: 0.42,
                branch_share: 0.20,
                data_working_set_kib: 384.0,
                code_working_set_kib: 32.0,
                branch_entropy: 0.45,
                data_pages: 512.0,
                code_pages: 24.0,
                mlp: 1.4,
            },
        }
        .clamped();

        // Interactivity: duty cycle of compute vs sleep. A burst is
        // ~2 ms of work on a medium core; sleeps scale to achieve the
        // target duty cycle.
        let burst_instructions: u64 = 2_000_000;
        let sleep_ns: u64 = match self.interactivity {
            Level::High => 6_000_000,   // ~25 % duty cycle
            Level::Medium => 2_000_000, // ~50 %
            Level::Low => 400_000,      // ~85 %
        };

        let total = match self.throughput {
            Level::High => 400_000_000,
            Level::Medium => 250_000_000,
            Level::Low => 150_000_000,
        };

        WorkloadProfile::new(self.name(), vec![Phase::new(characteristics, total)])
            .with_sleep(SleepPattern::new(burst_instructions, sleep_ns))
    }
}

impl fmt::Display for ImbConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_unique_configs() {
        let all = ImbConfig::all_nine();
        assert_eq!(all.len(), 9);
        let mut names: Vec<String> = all.iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 9);
        assert!(names.contains(&"HTHI".to_owned()));
        assert!(names.contains(&"LTLI".to_owned()));
    }

    #[test]
    fn display_matches_paper_labels() {
        let c = ImbConfig::new(Level::High, Level::Low);
        assert_eq!(c.to_string(), "HTLI");
    }

    #[test]
    fn high_throughput_is_more_compute_bound() {
        let h = ImbConfig::new(Level::High, Level::Medium).profile();
        let l = ImbConfig::new(Level::Low, Level::Medium).profile();
        assert!(h.phases()[0].characteristics.ilp > l.phases()[0].characteristics.ilp);
        assert!(h.total_instructions() > l.total_instructions());
    }

    #[test]
    fn high_interactivity_sleeps_more() {
        let hi = ImbConfig::new(Level::Medium, Level::High).profile();
        let li = ImbConfig::new(Level::Medium, Level::Low).profile();
        let hi_sleep = hi.sleep_pattern().expect("imb always has sleep");
        let li_sleep = li.sleep_pattern().expect("imb always has sleep");
        assert!(hi_sleep.sleep_ns > li_sleep.sleep_ns);
        assert_eq!(hi_sleep.burst_instructions, li_sleep.burst_instructions);
    }
}
