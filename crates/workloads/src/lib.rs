//! # workloads — benchmark profiles for the SmartBalance reproduction
//!
//! The PARSEC substitute: phase-structured synthetic workload profiles
//! matching the published characterisation of each PARSEC benchmark
//! (plus the paper's four x264 variants), the Table 3 benchmark mixes,
//! the Interactive Micro-Benchmarks (IMB) of Section 6, and a seeded
//! synthetic generator for predictor training and property tests.
//!
//! ## Quick start
//!
//! ```
//! use workloads::{parsec, ImbConfig, Level, MixId};
//!
//! // A PARSEC benchmark profile...
//! let bs = parsec::blackscholes();
//! assert!(bs.total_instructions() > 0);
//!
//! // ...a Table 3 mix...
//! assert_eq!(MixId(5).members().len(), 2);
//!
//! // ...and an interactive micro-benchmark.
//! let hthi = ImbConfig::new(Level::High, Level::High);
//! assert_eq!(hthi.name(), "HTHI");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod imb;
pub mod mixes;
pub mod parsec;
pub mod profile;
pub mod synthetic;

pub use imb::{ImbConfig, Level};
pub use mixes::MixId;
pub use profile::{Phase, PhaseCursor, SleepPattern, WorkloadProfile};
pub use synthetic::SyntheticGenerator;
