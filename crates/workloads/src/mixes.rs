//! Benchmark mixes (paper Table 3).
//!
//! | Mix | Members |
//! |-----|---------|
//! | Mix1 | x264_H crew, x264_H bow |
//! | Mix2 | x264_L crew, x264_L bow |
//! | Mix3 | x264_L crew, x264_H bow |
//! | Mix4 | x264_H crew, x264_L bow |
//! | Mix5 | bodytrack, x264_H crew |
//! | Mix6 | bodytrack, x264_H crew, x264_L bow |

use crate::parsec::{bodytrack, x264, X264Input};
use crate::profile::WorkloadProfile;

/// Identifier of a Table 3 mix (1–6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MixId(pub u8);

impl MixId {
    /// All six mixes of Table 3.
    pub const ALL: [MixId; 6] = [MixId(1), MixId(2), MixId(3), MixId(4), MixId(5), MixId(6)];

    /// Mix name as printed in the paper ("Mix1" .. "Mix6").
    pub fn name(&self) -> String {
        format!("Mix{}", self.0)
    }

    /// The member benchmark profiles of this mix, or `None` if the id
    /// is not in `1..=6` — the checked entry point for ids that come
    /// from user input (CLI flags, config files).
    pub fn try_members(&self) -> Option<Vec<WorkloadProfile>> {
        match self.0 {
            1 => Some(vec![
                x264(true, X264Input::Crew),
                x264(true, X264Input::Bowing),
            ]),
            2 => Some(vec![
                x264(false, X264Input::Crew),
                x264(false, X264Input::Bowing),
            ]),
            3 => Some(vec![
                x264(false, X264Input::Crew),
                x264(true, X264Input::Bowing),
            ]),
            4 => Some(vec![
                x264(true, X264Input::Crew),
                x264(false, X264Input::Bowing),
            ]),
            5 => Some(vec![bodytrack(), x264(true, X264Input::Crew)]),
            6 => Some(vec![
                bodytrack(),
                x264(true, X264Input::Crew),
                x264(false, X264Input::Bowing),
            ]),
            _ => None,
        }
    }

    /// The member benchmark profiles of this mix.
    ///
    /// # Panics
    ///
    /// Panics if the id is not in `1..=6`; use [`MixId::try_members`]
    /// for ids that are not known-valid.
    pub fn members(&self) -> Vec<WorkloadProfile> {
        self.try_members()
            // smartlint: allow(panic, "documented contract for known-valid ids; checked callers use try_members")
            .unwrap_or_else(|| panic!("no such mix: Mix{} (valid: Mix1..Mix6)", self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_membership() {
        assert_eq!(MixId(1).members().len(), 2);
        assert_eq!(MixId(6).members().len(), 3);
        let m3: Vec<String> = MixId(3)
            .members()
            .iter()
            .map(|p| p.name().to_owned())
            .collect();
        assert_eq!(m3, vec!["x264_L_crew", "x264_H_bow"]);
        let m5: Vec<String> = MixId(5)
            .members()
            .iter()
            .map(|p| p.name().to_owned())
            .collect();
        assert_eq!(m5, vec!["bodytrack", "x264_H_crew"]);
    }

    #[test]
    fn names() {
        assert_eq!(MixId(1).name(), "Mix1");
        assert_eq!(MixId::ALL.len(), 6);
    }

    #[test]
    #[should_panic(expected = "no such mix")]
    fn bad_mix_panics() {
        MixId(7).members();
    }
}
