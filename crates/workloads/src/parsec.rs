//! PARSEC-like benchmark profiles.
//!
//! Real PARSEC binaries cannot execute on the analytical simulator, so
//! each benchmark is replaced by a phase-structured profile whose
//! intrinsic characteristics follow the published PARSEC
//! characterisation (Bienia et al., PACT'08): blackscholes and
//! swaptions are small-working-set compute kernels, canneal and
//! streamcluster are cache-hostile, x264 alternates motion-estimation
//! (compute) with entropy-coding (branchy) phases, bodytrack mixes
//! vision kernels with control phases, etc.
//!
//! The x264 benchmark is instantiated in four variants — high (H) / low
//! (L) frame processing rate × `crew` / `bowing` input videos — because
//! the paper's Table 3 mixes use exactly those four, demonstrating that
//! one binary can expose very different IPS/power behaviour.

use archsim::WorkloadCharacteristics;

use crate::profile::{Phase, WorkloadProfile};

/// Baseline per-thread instruction budget for one benchmark run.
/// Chosen so a full run takes a few simulated seconds on a mid core.
pub const BASE_INSTRUCTIONS: u64 = 600_000_000;

#[allow(clippy::too_many_arguments)]
fn w(
    ilp: f64,
    mem_share: f64,
    branch_share: f64,
    dws: f64,
    cws: f64,
    entropy: f64,
    dpages: f64,
    cpages: f64,
    mlp: f64,
) -> WorkloadCharacteristics {
    WorkloadCharacteristics {
        ilp,
        mem_share,
        branch_share,
        data_working_set_kib: dws,
        code_working_set_kib: cws,
        branch_entropy: entropy,
        data_pages: dpages,
        code_pages: cpages,
        mlp,
    }
    .clamped()
}

/// blackscholes: embarrassingly parallel option pricing; tiny working
/// set, high ILP floating-point kernel.
pub fn blackscholes() -> WorkloadProfile {
    WorkloadProfile::uniform(
        "blackscholes",
        w(5.5, 0.15, 0.04, 8.0, 4.0, 0.05, 16.0, 4.0, 4.0),
        BASE_INSTRUCTIONS,
    )
}

/// swaptions: Monte-Carlo swaption pricing; compute-bound with moderate
/// memory traffic.
pub fn swaptions() -> WorkloadProfile {
    WorkloadProfile::uniform(
        "swaptions",
        w(4.8, 0.20, 0.08, 24.0, 8.0, 0.12, 40.0, 8.0, 3.5),
        BASE_INSTRUCTIONS,
    )
}

/// canneal: simulated-annealing netlist routing; pointer chasing over a
/// huge working set — the canonical cache-hostile PARSEC member.
pub fn canneal() -> WorkloadProfile {
    WorkloadProfile::uniform(
        "canneal",
        w(1.3, 0.48, 0.14, 2_048.0, 12.0, 0.40, 2_048.0, 8.0, 1.3),
        BASE_INSTRUCTIONS / 2,
    )
}

/// streamcluster: online clustering; streaming memory access with low
/// temporal locality but good MLP.
pub fn streamcluster() -> WorkloadProfile {
    WorkloadProfile::uniform(
        "streamcluster",
        w(2.4, 0.42, 0.10, 1_024.0, 8.0, 0.15, 1_024.0, 6.0, 4.5),
        BASE_INSTRUCTIONS / 2,
    )
}

/// fluidanimate: SPH fluid dynamics; mixed compute/memory with medium
/// working set.
pub fn fluidanimate() -> WorkloadProfile {
    WorkloadProfile::new(
        "fluidanimate",
        vec![
            // Neighbour-list rebuild: memory heavy.
            Phase::new(
                w(2.0, 0.45, 0.12, 384.0, 16.0, 0.25, 512.0, 10.0, 2.0),
                BASE_INSTRUCTIONS / 4,
            ),
            // Force computation: compute heavy.
            Phase::new(
                w(4.5, 0.22, 0.06, 96.0, 12.0, 0.10, 128.0, 8.0, 3.0),
                BASE_INSTRUCTIONS / 2,
            ),
            // Position update: streaming.
            Phase::new(
                w(3.0, 0.38, 0.08, 256.0, 10.0, 0.12, 384.0, 6.0, 4.0),
                BASE_INSTRUCTIONS / 4,
            ),
        ],
    )
}

/// bodytrack: computer-vision body tracking; alternates image-processing
/// kernels with branchy particle-filter control code. Used by Mix5/Mix6.
pub fn bodytrack() -> WorkloadProfile {
    WorkloadProfile::new(
        "bodytrack",
        vec![
            // Edge-map kernels: good ILP, medium working set.
            Phase::new(
                w(4.2, 0.28, 0.08, 128.0, 20.0, 0.15, 192.0, 14.0, 3.0),
                BASE_INSTRUCTIONS / 3,
            ),
            // Particle-filter weights: branchy, irregular.
            Phase::new(
                w(1.8, 0.32, 0.26, 160.0, 36.0, 0.50, 256.0, 24.0, 1.6),
                BASE_INSTRUCTIONS / 3,
            ),
            // Pose refinement: mixed.
            Phase::new(
                w(3.2, 0.30, 0.14, 96.0, 24.0, 0.25, 160.0, 18.0, 2.4),
                BASE_INSTRUCTIONS / 3,
            ),
        ],
    )
}

/// ferret: content-based similarity search pipeline; memory and branch
/// heavy.
pub fn ferret() -> WorkloadProfile {
    WorkloadProfile::uniform(
        "ferret",
        w(2.2, 0.40, 0.18, 512.0, 48.0, 0.35, 768.0, 32.0, 2.0),
        BASE_INSTRUCTIONS / 2,
    )
}

/// freqmine: frequent-itemset mining; tree traversal, branchy with a
/// large working set.
pub fn freqmine() -> WorkloadProfile {
    WorkloadProfile::uniform(
        "freqmine",
        w(1.9, 0.38, 0.22, 768.0, 40.0, 0.45, 1_024.0, 28.0, 1.5),
        BASE_INSTRUCTIONS / 2,
    )
}

/// dedup: pipelined compression/deduplication; streaming with hashing.
pub fn dedup() -> WorkloadProfile {
    WorkloadProfile::uniform(
        "dedup",
        w(2.8, 0.36, 0.12, 448.0, 20.0, 0.20, 640.0, 14.0, 3.2),
        BASE_INSTRUCTIONS / 2,
    )
}

/// vips: image transformation pipeline; good ILP over streamed tiles.
pub fn vips() -> WorkloadProfile {
    WorkloadProfile::uniform(
        "vips",
        w(4.0, 0.30, 0.07, 192.0, 28.0, 0.10, 288.0, 20.0, 3.8),
        BASE_INSTRUCTIONS,
    )
}

/// x264 video encoding.
///
/// `high_rate` selects the paper's H (high frame-processing rate ⇒
/// bigger per-frame compute bursts) vs L configuration; `input` selects
/// the `crew` or `bowing` sequence. `crew` has more motion (more
/// motion-estimation work, larger working set); `bowing` is mostly
/// static (cheaper motion estimation, more time in entropy coding).
pub fn x264(high_rate: bool, input: X264Input) -> WorkloadProfile {
    let (me_scale, dws, entropy) = match input {
        // High-motion input: heavier motion estimation, bigger reference
        // window, more predictable branches inside SAD loops.
        X264Input::Crew => (1.4, 320.0, 0.30),
        // Mostly-static input: light motion estimation, skip-heavy and
        // branchier entropy coding.
        X264Input::Bowing => (0.7, 144.0, 0.45),
    };
    let rate_scale = if high_rate { 1.0 } else { 0.45 };
    let name = format!(
        "x264_{}_{}",
        if high_rate { "H" } else { "L" },
        input.as_str()
    );
    let total = (BASE_INSTRUCTIONS as f64 * rate_scale) as u64;
    let me_len = ((total as f64) * 0.5 * me_scale / (0.5 * me_scale + 0.5)) as u64;
    let ec_len = total - me_len;
    WorkloadProfile::new(
        name,
        vec![
            // Motion estimation / DCT: vectorizable compute.
            Phase::new(
                w(5.0, 0.26, 0.06, dws, 24.0, 0.12, dws * 1.5, 16.0, 3.5),
                me_len.max(1),
            ),
            // Entropy coding / deblocking: serial, branchy.
            Phase::new(
                w(1.6, 0.30, 0.24, 64.0, 40.0, entropy, 96.0, 28.0, 1.5),
                ec_len.max(1),
            ),
        ],
    )
}

/// Input video for [`x264`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum X264Input {
    /// High-motion "crew" sequence.
    Crew,
    /// Mostly static "bowing" sequence.
    Bowing,
}

impl X264Input {
    fn as_str(self) -> &'static str {
        match self {
            X264Input::Crew => "crew",
            X264Input::Bowing => "bow",
        }
    }
}

/// All single PARSEC benchmarks used in the evaluation (the x264
/// variants appear via [`crate::mixes`]).
pub fn all() -> Vec<WorkloadProfile> {
    vec![
        blackscholes(),
        swaptions(),
        canneal(),
        streamcluster(),
        fluidanimate(),
        bodytrack(),
        ferret(),
        freqmine(),
        dedup(),
        vips(),
    ]
}

/// Looks a profile up by name, including the four x264 variants.
pub fn by_name(name: &str) -> Option<WorkloadProfile> {
    match name {
        "blackscholes" => Some(blackscholes()),
        "swaptions" => Some(swaptions()),
        "canneal" => Some(canneal()),
        "streamcluster" => Some(streamcluster()),
        "fluidanimate" => Some(fluidanimate()),
        "bodytrack" => Some(bodytrack()),
        "ferret" => Some(ferret()),
        "freqmine" => Some(freqmine()),
        "dedup" => Some(dedup()),
        "vips" => Some(vips()),
        "x264_H_crew" => Some(x264(true, X264Input::Crew)),
        "x264_H_bow" => Some(x264(true, X264Input::Bowing)),
        "x264_L_crew" => Some(x264(false, X264Input::Crew)),
        "x264_L_bow" => Some(x264(false, X264Input::Bowing)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::{estimate, CoreConfig};

    #[test]
    fn all_profiles_valid_and_distinct() {
        let profiles = all();
        assert_eq!(profiles.len(), 10);
        for p in &profiles {
            assert!(p.total_instructions() > 0);
            for phase in p.phases() {
                // Characteristics already sane (clamped at build).
                assert_eq!(phase.characteristics, phase.characteristics.clamped());
            }
        }
        let mut names: Vec<&str> = profiles.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10, "benchmark names must be unique");
    }

    #[test]
    fn by_name_roundtrip() {
        for p in all() {
            let found = by_name(p.name()).expect("lookup");
            assert_eq!(found.name(), p.name());
        }
        assert!(by_name("x264_H_crew").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn x264_variants_differ() {
        let hc = x264(true, X264Input::Crew);
        let lb = x264(false, X264Input::Bowing);
        assert!(hc.total_instructions() > lb.total_instructions());
        assert_eq!(hc.name(), "x264_H_crew");
        assert_eq!(lb.name(), "x264_L_bow");
        // Crew spends a larger share in motion estimation.
        let me_share_hc = hc.phases()[0].instructions as f64 / hc.total_instructions() as f64;
        let me_share_lb = lb.phases()[0].instructions as f64 / lb.total_instructions() as f64;
        assert!(me_share_hc > me_share_lb);
    }

    #[test]
    fn compute_vs_memory_benchmarks_behave_differently() {
        // blackscholes should gain far more from the Huge core than
        // canneal does — the heterogeneity the balancer exploits.
        let huge = CoreConfig::huge();
        let small = CoreConfig::small();
        let gain = |p: &WorkloadProfile| {
            let ch = p.phases()[0].characteristics;
            let h = estimate(&ch, &huge).ipc * huge.freq_hz;
            let s = estimate(&ch, &small).ipc * small.freq_hz;
            h / s
        };
        assert!(gain(&blackscholes()) > 2.0 * gain(&canneal()));
    }
}
