//! Workload profiles: phase-structured descriptions of a benchmark
//! thread's execution, including optional interactive (sleep/wake)
//! behaviour.
//!
//! A profile is the unit the kernel simulator attaches to a task: a
//! sequence of [`Phase`]s, each with intrinsic
//! [`WorkloadCharacteristics`] and a length in committed instructions,
//! plus an optional [`SleepPattern`] describing interactivity (the
//! paper's IMB benchmarks control exactly this).

use archsim::WorkloadCharacteristics;
use serde::{Deserialize, Serialize};

/// One execution phase: `instructions` committed with the given
/// intrinsic characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Intrinsic characteristics during this phase.
    pub characteristics: WorkloadCharacteristics,
    /// Phase length in committed instructions.
    pub instructions: u64,
}

impl Phase {
    /// Creates a phase.
    ///
    /// # Panics
    ///
    /// Panics if `instructions == 0`.
    pub fn new(characteristics: WorkloadCharacteristics, instructions: u64) -> Self {
        assert!(
            instructions > 0,
            "a phase must commit at least one instruction"
        );
        Phase {
            characteristics,
            instructions,
        }
    }
}

/// Interactive behaviour: run `burst_instructions`, then sleep for
/// `sleep_ns` (waiting for I/O, a frame deadline, user input, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SleepPattern {
    /// Instructions committed between sleeps.
    pub burst_instructions: u64,
    /// Sleep duration after each burst, nanoseconds.
    pub sleep_ns: u64,
}

impl SleepPattern {
    /// Creates a sleep pattern.
    ///
    /// # Panics
    ///
    /// Panics if `burst_instructions == 0`.
    pub fn new(burst_instructions: u64, sleep_ns: u64) -> Self {
        assert!(
            burst_instructions > 0,
            "burst must be at least one instruction"
        );
        SleepPattern {
            burst_instructions,
            sleep_ns,
        }
    }
}

/// Cursor memoizing the phase a task is currently executing, so that
/// repeated phase lookups under monotone progress are O(1) amortized
/// instead of O(phases) per call.
///
/// The cursor caches `(index, start)` of the last phase served and
/// walks forward from there; when progress moved backwards (a
/// repeating task restarting its profile) it rewinds and rescans from
/// phase 0. It therefore never changes lookup *results*, only their
/// cost. A cursor is tied to the profile it was advanced on — reuse
/// against a different profile is a logic error (each task owns one
/// cursor for its own profile).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseCursor {
    /// Index of the cached phase.
    index: usize,
    /// Instructions consumed by all phases before `index`.
    start: u64,
}

impl PhaseCursor {
    /// A cursor positioned at the first phase.
    pub fn new() -> Self {
        PhaseCursor::default()
    }

    /// Index of the phase the cursor last resolved.
    pub fn index(&self) -> usize {
        self.index
    }
}

/// A complete workload profile for one thread.
///
/// # Examples
///
/// ```
/// use archsim::WorkloadCharacteristics;
/// use workloads::{Phase, WorkloadProfile};
///
/// let profile = WorkloadProfile::new(
///     "two-phase",
///     vec![
///         Phase::new(WorkloadCharacteristics::compute_bound(), 1_000_000),
///         Phase::new(WorkloadCharacteristics::memory_bound(), 2_000_000),
///     ],
/// );
/// assert_eq!(profile.total_instructions(), 3_000_000);
/// // Progress 0 is in the compute phase; past 1M is in the memory phase.
/// assert!(profile.characteristics_at(0).ilp > profile.characteristics_at(1_500_000).ilp);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    name: String,
    phases: Vec<Phase>,
    sleep: Option<SleepPattern>,
    total_instructions: u64,
}

impl WorkloadProfile {
    /// Creates a profile from a non-empty phase list.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    pub fn new(name: impl Into<String>, phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "a profile needs at least one phase");
        // Saturating: a profile of deliberately huge phases (u64::MAX
        // sentinels for "runs forever") must not wrap the total.
        let total = phases
            .iter()
            .fold(0u64, |acc, p| acc.saturating_add(p.instructions));
        WorkloadProfile {
            name: name.into(),
            phases,
            sleep: None,
            total_instructions: total,
        }
    }

    /// Single-phase convenience constructor.
    pub fn uniform(
        name: impl Into<String>,
        characteristics: WorkloadCharacteristics,
        instructions: u64,
    ) -> Self {
        WorkloadProfile::new(name, vec![Phase::new(characteristics, instructions)])
    }

    /// Attaches an interactive sleep pattern (builder style).
    pub fn with_sleep(mut self, sleep: SleepPattern) -> Self {
        self.sleep = Some(sleep);
        self
    }

    /// Profile name (e.g. `"x264_H_crew"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The phase list.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// The interactivity pattern, if any.
    pub fn sleep_pattern(&self) -> Option<SleepPattern> {
        self.sleep
    }

    /// Total instructions the thread commits before exiting.
    pub fn total_instructions(&self) -> u64 {
        self.total_instructions
    }

    /// Characteristics in effect after `progress` committed
    /// instructions. Progress at or past the end returns the last
    /// phase's characteristics.
    pub fn characteristics_at(&self, progress: u64) -> &WorkloadCharacteristics {
        let mut cursor = PhaseCursor::new();
        &self.phases[self.phase_index_at(&mut cursor, progress)].characteristics
    }

    /// Instructions remaining in the phase active at `progress`
    /// (`None` once the profile is complete).
    pub fn remaining_in_phase(&self, progress: u64) -> Option<u64> {
        let mut cursor = PhaseCursor::new();
        self.remaining_in_phase_with(&mut cursor, progress)
    }

    /// Index of the phase active at `progress`, advancing `cursor` so
    /// the next lookup under monotone progress is O(1) amortized.
    /// Progress at or past the end resolves to the last phase.
    pub fn phase_index_at(&self, cursor: &mut PhaseCursor, progress: u64) -> usize {
        // Progress moved backwards (profile restart) or the cursor
        // belongs to another profile: rewind and rescan.
        if progress < cursor.start || cursor.index >= self.phases.len() {
            *cursor = PhaseCursor::new();
        }
        loop {
            let end = cursor
                .start
                .saturating_add(self.phases[cursor.index].instructions);
            if progress < end || cursor.index + 1 == self.phases.len() {
                return cursor.index;
            }
            cursor.start = end;
            cursor.index += 1;
        }
    }

    /// Cursor-accelerated [`WorkloadProfile::characteristics_at`].
    pub fn characteristics_with(
        &self,
        cursor: &mut PhaseCursor,
        progress: u64,
    ) -> &WorkloadCharacteristics {
        &self.phases[self.phase_index_at(cursor, progress)].characteristics
    }

    /// Cursor-accelerated [`WorkloadProfile::remaining_in_phase`].
    pub fn remaining_in_phase_with(&self, cursor: &mut PhaseCursor, progress: u64) -> Option<u64> {
        if progress >= self.total_instructions {
            return None;
        }
        let idx = self.phase_index_at(cursor, progress);
        let end = cursor.start.saturating_add(self.phases[idx].instructions);
        Some(end - progress)
    }

    /// Scales every phase length by `factor`, preserving the phase
    /// structure; used to derive 2/4/8-thread variants where each
    /// thread handles a slice of the total work.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        let phases = self
            .phases
            .iter()
            .map(|p| Phase {
                characteristics: p.characteristics,
                instructions: ((p.instructions as f64 * factor).round() as u64).max(1),
            })
            .collect();
        let mut out = WorkloadProfile::new(self.name.clone(), phases);
        out.sleep = self.sleep;
        out
    }

    /// Splits the profile into `threads` worker shares that together
    /// commit exactly `total_instructions()` (when every phase has at
    /// least `threads` instructions): the first `threads - 1` workers
    /// take `1/threads` of each phase, the last takes the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn split_among(&self, threads: usize) -> Vec<Self> {
        assert!(threads > 0, "need at least one thread");
        if threads == 1 {
            return vec![self.clone()];
        }
        let share = self.scaled(1.0 / threads as f64);
        let copies = (threads - 1) as u64;
        let last_phases = self
            .phases
            .iter()
            .zip(share.phases())
            .map(|(orig, part)| Phase {
                characteristics: orig.characteristics,
                // Whatever the equal shares did not cover; a rounded-up
                // share of a tiny phase can cover it all, so clamp.
                instructions: orig
                    .instructions
                    .saturating_sub(part.instructions * copies)
                    .max(1),
            })
            .collect();
        let mut last = WorkloadProfile::new(self.name.clone(), last_phases);
        last.sleep = self.sleep;
        let mut parts = vec![share; threads - 1];
        parts.push(last);
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_phase() -> WorkloadProfile {
        WorkloadProfile::new(
            "t",
            vec![
                Phase::new(WorkloadCharacteristics::compute_bound(), 100),
                Phase::new(WorkloadCharacteristics::memory_bound(), 200),
            ],
        )
    }

    #[test]
    fn totals_and_lookup() {
        let p = two_phase();
        assert_eq!(p.total_instructions(), 300);
        assert_eq!(
            *p.characteristics_at(0),
            WorkloadCharacteristics::compute_bound()
        );
        assert_eq!(
            *p.characteristics_at(99),
            WorkloadCharacteristics::compute_bound()
        );
        assert_eq!(
            *p.characteristics_at(100),
            WorkloadCharacteristics::memory_bound()
        );
        // Past the end: last phase.
        assert_eq!(
            *p.characteristics_at(10_000),
            WorkloadCharacteristics::memory_bound()
        );
    }

    #[test]
    fn remaining_in_phase() {
        let p = two_phase();
        assert_eq!(p.remaining_in_phase(0), Some(100));
        assert_eq!(p.remaining_in_phase(99), Some(1));
        assert_eq!(p.remaining_in_phase(100), Some(200));
        assert_eq!(p.remaining_in_phase(299), Some(1));
        assert_eq!(p.remaining_in_phase(300), None);
        assert_eq!(p.remaining_in_phase(301), None);
    }

    #[test]
    fn scaled_preserves_structure() {
        let p = two_phase().with_sleep(SleepPattern::new(10, 5));
        let s = p.scaled(2.0);
        assert_eq!(s.total_instructions(), 600);
        assert_eq!(s.phases().len(), 2);
        assert_eq!(s.sleep_pattern(), Some(SleepPattern::new(10, 5)));
        let tiny = p.scaled(1e-9);
        assert!(
            tiny.total_instructions() >= 2,
            "phases never collapse to zero"
        );
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_profile_rejected() {
        WorkloadProfile::new("bad", vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn empty_phase_rejected() {
        Phase::new(WorkloadCharacteristics::balanced(), 0);
    }

    #[test]
    fn characteristics_at_exact_boundaries() {
        let p = WorkloadProfile::new(
            "b",
            vec![
                Phase::new(WorkloadCharacteristics::compute_bound(), 1),
                Phase::new(WorkloadCharacteristics::memory_bound(), 1),
                Phase::new(WorkloadCharacteristics::branch_bound(), 1),
            ],
        );
        assert_eq!(
            *p.characteristics_at(0),
            WorkloadCharacteristics::compute_bound()
        );
        assert_eq!(
            *p.characteristics_at(1),
            WorkloadCharacteristics::memory_bound()
        );
        assert_eq!(
            *p.characteristics_at(2),
            WorkloadCharacteristics::branch_bound()
        );
        assert_eq!(
            *p.characteristics_at(3),
            WorkloadCharacteristics::branch_bound()
        );
    }

    #[test]
    fn scaled_total_tracks_factor() {
        let p = WorkloadProfile::new(
            "s",
            vec![
                Phase::new(WorkloadCharacteristics::balanced(), 1_000),
                Phase::new(WorkloadCharacteristics::balanced(), 3_000),
            ],
        );
        let half = p.scaled(0.5);
        assert_eq!(half.total_instructions(), 2_000);
        // Per-phase proportions preserved.
        assert_eq!(half.phases()[0].instructions, 500);
        assert_eq!(half.phases()[1].instructions, 1_500);
    }

    #[test]
    fn split_among_conserves_instructions() {
        let p = WorkloadProfile::new(
            "odd",
            vec![
                Phase::new(WorkloadCharacteristics::compute_bound(), 1_000_003),
                Phase::new(WorkloadCharacteristics::memory_bound(), 777),
            ],
        )
        .with_sleep(SleepPattern::new(10, 5));
        for threads in [1, 2, 3, 4, 8] {
            let parts = p.split_among(threads);
            assert_eq!(parts.len(), threads);
            let total: u64 = parts.iter().map(WorkloadProfile::total_instructions).sum();
            assert_eq!(total, p.total_instructions(), "{threads} threads");
            for part in &parts {
                assert_eq!(part.sleep_pattern(), Some(SleepPattern::new(10, 5)));
                assert_eq!(part.phases().len(), 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_rejects_zero_factor() {
        WorkloadProfile::uniform("z", WorkloadCharacteristics::balanced(), 10).scaled(0.0);
    }

    #[test]
    fn cursor_lookup_matches_scan_everywhere() {
        let p = WorkloadProfile::new(
            "c",
            vec![
                Phase::new(WorkloadCharacteristics::compute_bound(), 100),
                Phase::new(WorkloadCharacteristics::memory_bound(), 1),
                Phase::new(WorkloadCharacteristics::branch_bound(), 250),
            ],
        );
        let mut cursor = PhaseCursor::new();
        for progress in 0..400 {
            assert_eq!(
                p.characteristics_with(&mut cursor, progress),
                p.characteristics_at(progress),
                "progress {progress}"
            );
            assert_eq!(
                p.remaining_in_phase_with(&mut cursor, progress),
                p.remaining_in_phase(progress),
                "progress {progress}"
            );
        }
        assert_eq!(cursor.index(), 2);
    }

    #[test]
    fn cursor_rewinds_on_backwards_progress() {
        let p = two_phase();
        let mut cursor = PhaseCursor::new();
        assert_eq!(p.phase_index_at(&mut cursor, 250), 1);
        // A repeating task restarts its profile: progress drops to 0.
        assert_eq!(p.phase_index_at(&mut cursor, 0), 0);
        assert_eq!(p.remaining_in_phase_with(&mut cursor, 0), Some(100));
    }

    #[test]
    fn cursor_past_end_resolves_to_last_phase() {
        let p = two_phase();
        let mut cursor = PhaseCursor::new();
        assert_eq!(p.phase_index_at(&mut cursor, 300), 1);
        assert_eq!(p.phase_index_at(&mut cursor, u64::MAX), 1);
        assert_eq!(p.remaining_in_phase_with(&mut cursor, 300), None);
    }

    #[test]
    fn overflow_boundary_saturates() {
        // Cumulative phase sums beyond u64::MAX must saturate, not
        // wrap: the huge phase absorbs all progress below u64::MAX.
        let p = WorkloadProfile::new(
            "huge",
            vec![
                Phase::new(WorkloadCharacteristics::compute_bound(), u64::MAX - 10),
                Phase::new(WorkloadCharacteristics::memory_bound(), 1_000),
            ],
        );
        assert_eq!(p.total_instructions(), u64::MAX);
        assert_eq!(
            *p.characteristics_at(u64::MAX - 11),
            WorkloadCharacteristics::compute_bound()
        );
        assert_eq!(
            *p.characteristics_at(u64::MAX - 5),
            WorkloadCharacteristics::memory_bound()
        );
        assert_eq!(p.remaining_in_phase(u64::MAX - 11), Some(1));
        // Inside the saturated tail phase: remaining is clamped to the
        // saturated end, never a wrapped tiny value.
        assert_eq!(p.remaining_in_phase(u64::MAX - 10), Some(10));
        assert_eq!(p.remaining_in_phase(u64::MAX), None);
        let mut cursor = PhaseCursor::new();
        assert_eq!(p.phase_index_at(&mut cursor, u64::MAX - 1), 1);
    }

    #[test]
    fn uniform_constructor() {
        let p = WorkloadProfile::uniform("u", WorkloadCharacteristics::balanced(), 42);
        assert_eq!(p.phases().len(), 1);
        assert_eq!(p.total_instructions(), 42);
        assert_eq!(p.name(), "u");
        assert_eq!(p.sleep_pattern(), None);
    }
}
