//! Deterministic synthetic workload generation.
//!
//! Used for (a) the offline predictor-training corpus (paper Section
//! 4.2.2 trains Θ on profiling runs), (b) the Fig. 8 known-optimum
//! scalability scenarios, and (c) property-based tests. Generation is
//! seeded xorshift64*, so every corpus is reproducible without pulling
//! an RNG dependency into the library.

use archsim::WorkloadCharacteristics;

use crate::profile::{Phase, SleepPattern, WorkloadProfile};

/// Seeded deterministic generator of workload characteristics and
/// profiles.
///
/// # Examples
///
/// ```
/// use workloads::SyntheticGenerator;
///
/// let mut gen_a = SyntheticGenerator::new(7);
/// let mut gen_b = SyntheticGenerator::new(7);
/// assert_eq!(gen_a.characteristics(), gen_b.characteristics());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntheticGenerator {
    state: u64,
}

impl SyntheticGenerator {
    /// Creates a generator from a seed (any value; 0 is remapped).
    pub fn new(seed: u64) -> Self {
        SyntheticGenerator {
            state: seed | 0x1234_5678_9ABC_DEF1,
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.next_u64() % n
    }

    /// A random but plausible characteristics vector spanning the whole
    /// compute/memory/branch space.
    pub fn characteristics(&mut self) -> WorkloadCharacteristics {
        // Log-uniform working sets so both cache-resident and
        // cache-hostile workloads are represented.
        let dws = 4.0 * (2.0f64).powf(self.range(0.0, 11.0)); // 4 KiB .. 8 MiB
        let cws = 2.0 * (2.0f64).powf(self.range(0.0, 7.0)); // 2 KiB .. 256 KiB
        WorkloadCharacteristics {
            ilp: self.range(1.0, 7.5),
            mem_share: self.range(0.05, 0.55),
            branch_share: self.range(0.02, 0.32),
            data_working_set_kib: dws,
            code_working_set_kib: cws,
            branch_entropy: self.range(0.0, 0.8),
            data_pages: dws / 3.0,
            code_pages: cws / 2.0,
            mlp: self.range(1.0, 6.0),
        }
        .clamped()
    }

    /// A random multi-phase profile with `1..=max_phases` phases and the
    /// given total instruction budget, optionally interactive.
    ///
    /// # Panics
    ///
    /// Panics if `max_phases == 0` or `total_instructions == 0`.
    pub fn profile(
        &mut self,
        name: impl Into<String>,
        max_phases: usize,
        total_instructions: u64,
        interactive: bool,
    ) -> WorkloadProfile {
        assert!(max_phases > 0, "need at least one phase");
        assert!(total_instructions > 0, "need a positive budget");
        let phases_n = 1 + self.below(max_phases as u64) as usize;
        let per_phase = (total_instructions / phases_n as u64).max(1);
        let phases = (0..phases_n)
            .map(|_| Phase::new(self.characteristics(), per_phase))
            .collect();
        let mut p = WorkloadProfile::new(name, phases);
        if interactive {
            let burst = 500_000 + self.below(4_000_000);
            let sleep = self.below(8_000_000);
            p = p.with_sleep(SleepPattern::new(burst, sleep));
        }
        p
    }

    /// A corpus of `n` random characteristics vectors — the predictor
    /// training set.
    pub fn corpus(&mut self, n: usize) -> Vec<WorkloadCharacteristics> {
        (0..n).map(|_| self.characteristics()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SyntheticGenerator::new(42);
        let mut b = SyntheticGenerator::new(42);
        for _ in 0..50 {
            assert_eq!(a.characteristics(), b.characteristics());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SyntheticGenerator::new(1);
        let mut b = SyntheticGenerator::new(2);
        assert_ne!(a.characteristics(), b.characteristics());
    }

    #[test]
    fn characteristics_always_sane() {
        let mut g = SyntheticGenerator::new(9);
        for _ in 0..500 {
            let c = g.characteristics();
            assert_eq!(c, c.clamped());
        }
    }

    #[test]
    fn corpus_spans_working_set_range() {
        let mut g = SyntheticGenerator::new(3);
        let corpus = g.corpus(200);
        assert_eq!(corpus.len(), 200);
        let min_ws = corpus
            .iter()
            .map(|c| c.data_working_set_kib)
            .fold(f64::MAX, f64::min);
        let max_ws = corpus
            .iter()
            .map(|c| c.data_working_set_kib)
            .fold(0.0, f64::max);
        assert!(min_ws < 64.0, "some cache-resident workloads: {min_ws}");
        assert!(max_ws > 1_024.0, "some cache-hostile workloads: {max_ws}");
    }

    #[test]
    fn profile_respects_budget_roughly() {
        let mut g = SyntheticGenerator::new(5);
        let p = g.profile("syn", 4, 1_000_000, true);
        assert!(p.total_instructions() <= 1_000_000);
        assert!(p.total_instructions() >= 250_000 - 4);
        assert!(p.sleep_pattern().is_some());
        let q = g.profile("syn2", 4, 1_000_000, false);
        assert!(q.sleep_pattern().is_none());
    }

    #[test]
    fn range_and_below_bounds() {
        let mut g = SyntheticGenerator::new(11);
        for _ in 0..1000 {
            let x = g.range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
            let n = g.below(17);
            assert!(n < 17);
        }
    }
}
