//! Defining your own platform and optimization goal.
//!
//! The paper's pitch is *generality*: unlike IKS/GTS, SmartBalance
//! handles any number of core types without re-engineering. This
//! example builds the three-type platform of the paper's Fig. 1 (Big
//! A15-class / Medium A11-class / Little A7-class), trains predictors
//! for it, and runs the same workload under two different optimization
//! goals — energy efficiency and raw throughput — with tuned per-core
//! weights ω.
//!
//! ```sh
//! cargo run --release -p smartbalance --example custom_platform
//! ```

use archsim::{CoreConfig, CoreTypeId, Platform};
use smartbalance::{
    run_experiment_with, ExperimentSpec, Goal, Policy, RunOptions, SmartBalance, SmartBalanceConfig,
};

/// An A11-class middle core between the stock A15/A7 presets.
fn a11_like() -> CoreConfig {
    CoreConfig {
        name: "midA11".to_owned(),
        issue_width: 2,
        lq_size: 12,
        sq_size: 12,
        iq_size: 24,
        rob_size: 64,
        phys_regs: 96,
        l1i_kib: 32,
        l1d_kib: 32,
        itlb_entries: 48,
        dtlb_entries: 48,
        branch_predictor_strength: 0.88,
        freq_hz: 1.3e9,
        vdd: 0.8,
        area_mm2: 2.6,
        peak_ipc: 1.6,
        peak_power_w: 0.9,
    }
}

fn main() {
    // Fig. 1(b)'s "aggressively heterogeneous" 3-type hexa-core: 2 big,
    // 2 medium, 2 little — a configuration GTS cannot express.
    let platform = Platform::new(
        vec![CoreConfig::a15_like(), a11_like(), CoreConfig::a7_like()],
        vec![
            CoreTypeId(0),
            CoreTypeId(0),
            CoreTypeId(1),
            CoreTypeId(1),
            CoreTypeId(2),
            CoreTypeId(2),
        ],
    );

    let mut profiles = Vec::new();
    for name in ["x264_H_crew", "streamcluster", "swaptions"] {
        let bench = workloads::parsec::by_name(name).expect("known benchmark");
        profiles.extend(ExperimentSpec::parallelize(&bench.scaled(0.3), 2));
    }
    let spec = ExperimentSpec::new("custom", platform.clone(), profiles);

    println!("goal               instr/J      GIPS   avg W   migrations");
    for (label, goal, weights) in [
        ("energy", Goal::EnergyEfficiency, None),
        ("throughput", Goal::Throughput, None),
        // Prefer the medium cores (e.g. thermally constrained bigs):
        // ω = 0.5 on the big pair.
        (
            "energy+weights",
            Goal::EnergyEfficiency,
            Some(vec![0.5, 0.5, 1.0, 1.0, 1.0, 1.0]),
        ),
    ] {
        let cfg = SmartBalanceConfig {
            goal,
            core_weights: weights,
            ..SmartBalanceConfig::default()
        };
        let mut policy = SmartBalance::with_config(&platform, cfg);
        let r = run_experiment_with(&spec, &mut policy, RunOptions::new()).result;
        println!(
            "{:<16} {:>9.3e} {:>9.3} {:>7.3} {:>12}",
            label,
            r.energy_efficiency(),
            r.stats.throughput_ips() / 1e9,
            r.stats.avg_power_w(),
            r.stats.migrations,
        );
    }

    // Baseline for context.
    let mut vanilla = Policy::Vanilla.build(&platform, None);
    let r = run_experiment_with(&spec, vanilla.as_mut(), RunOptions::new()).result;
    println!(
        "{:<16} {:>9.3e} {:>9.3} {:>7.3} {:>12}",
        "vanilla",
        r.energy_efficiency(),
        r.stats.throughput_ips() / 1e9,
        r.stats.avg_power_w(),
        r.stats.migrations,
    );
}
