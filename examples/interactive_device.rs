//! A mobile-device scenario: a mix of interactive micro-benchmarks
//! (paper Section 6's IMB) — a high-throughput foreground task, two
//! medium background services and a low-intensity logger — plus a pair
//! of kernel housekeeping threads, running on the big.LITTLE platform.
//!
//! Shows (a) that interactive threads sleep and the balancer handles
//! stale samples through its signature cache, and (b) the energy story
//! at low load: SmartBalance parks light threads on LITTLE cores and
//! lets the big cluster power-gate.
//!
//! ```sh
//! cargo run --release -p smartbalance --example interactive_device
//! ```

use archsim::{Platform, WorkloadCharacteristics};
use kernelsim::{System, SystemConfig, Task};
use smartbalance::{Policy, SmartBalance};
use workloads::{ImbConfig, Level, SleepPattern, WorkloadProfile};

fn build_system(platform: &Platform) -> System {
    let mut sys = System::new(platform.clone(), SystemConfig::default());
    // Foreground: high throughput, highly interactive (a game loop).
    sys.spawn(
        ImbConfig::new(Level::High, Level::High)
            .profile()
            .scaled(0.5),
    );
    // Background services.
    sys.spawn(
        ImbConfig::new(Level::Medium, Level::Medium)
            .profile()
            .scaled(0.5),
    );
    sys.spawn(
        ImbConfig::new(Level::Medium, Level::High)
            .profile()
            .scaled(0.5),
    );
    // A logger: low throughput, mostly asleep.
    sys.spawn(
        ImbConfig::new(Level::Low, Level::High)
            .profile()
            .scaled(0.5),
    );
    // Kernel housekeeping: tiny periodic bursts, never exits.
    for k in 0..2 {
        let id = sys.next_task_id();
        let kprofile = WorkloadProfile::uniform(
            format!("kworker/{k}"),
            WorkloadCharacteristics::balanced(),
            u64::MAX / 2,
        )
        .with_sleep(SleepPattern::new(50_000, 20_000_000));
        sys.spawn_task(Task::new(id, kprofile, archsim::CoreId(k)).as_kernel_thread());
    }
    sys
}

fn main() {
    let platform = Platform::octa_big_little();

    // Run the same scenario under GTS and SmartBalance.
    let mut results = Vec::new();
    for policy_kind in [Policy::Gts, Policy::Smart] {
        let mut sys = build_system(&platform);
        let mut policy: Box<dyn kernelsim::LoadBalancer> = match policy_kind {
            Policy::Smart => Box::new(SmartBalance::new(&platform)),
            other => other.build(&platform, None),
        };
        let mut epochs = 0;
        // Kernel threads never exit; run until the user tasks are done.
        while epochs < 400
            && sys
                .tasks()
                .iter()
                .filter(|t| !t.is_kernel_thread())
                .any(|t| !t.is_exited())
        {
            sys.run_epoch(policy.as_mut());
            epochs += 1;
        }
        let stats = sys.stats();
        let big_sleep: u64 = (0..4).map(|j| stats.per_core[j].sleep_ns).sum();
        let little_busy: u64 = (4..8).map(|j| stats.per_core[j].busy_ns).sum();
        println!(
            "{:<14} {:>9.3e} instr/J  avg {:.3} W  big-cluster slept {:.1} s  little busy {:.1} s",
            policy.name(),
            stats.instructions_per_joule(),
            stats.avg_power_w(),
            big_sleep as f64 * 1e-9,
            little_busy as f64 * 1e-9,
        );
        results.push(stats.instructions_per_joule());
    }
    println!(
        "\nSmartBalance / GTS energy efficiency: {:.2}x (paper Fig. 5: ~1.2x)",
        results[1] / results[0]
    );
}
