//! Quickstart: queue one benchmark under the vanilla Linux balancer
//! and under SmartBalance on the paper's quad-core heterogeneous
//! MPSoC, run both in parallel, and compare measured energy
//! efficiency.
//!
//! ```sh
//! cargo run --release -p smartbalance --example quickstart
//! ```

use archsim::Platform;
use smartbalance::{ExperimentSpec, ExperimentSuite, Policy};

fn main() {
    // The paper's primary platform: Huge + Big + Medium + Small cores.
    let platform = Platform::quad_heterogeneous();

    // A mixed workload: compute kernels, a cache-hostile benchmark and
    // vision code, 2 threads each (Table 3 spirit).
    let mut profiles = Vec::new();
    for name in ["blackscholes", "canneal", "bodytrack", "streamcluster"] {
        let bench = workloads::parsec::by_name(name).expect("known benchmark");
        profiles.extend(ExperimentSpec::parallelize(&bench.scaled(0.3), 2));
    }
    let spec = ExperimentSpec::new("quickstart", platform, profiles);

    // Queue both policies on the experiment suite; they run on the
    // worker pool and come back in push order.
    let mut suite = ExperimentSuite::new();
    for policy in [Policy::Vanilla, Policy::Smart] {
        suite.push(spec.clone(), policy);
    }
    let report = suite.run();

    println!("policy        instr/J        avg W    sim time   migrations");
    for job in &report.jobs {
        let r = &job.result;
        println!(
            "{:<12} {:>10.3e} {:>10.3} {:>8.2} s {:>12}",
            r.policy,
            r.energy_efficiency(),
            r.stats.avg_power_w(),
            r.stats.elapsed_ns as f64 * 1e-9,
            r.stats.migrations,
        );
    }
    println!(
        "\nSmartBalance / vanilla energy efficiency: {:.2}x",
        report.gains_vs(Policy::Vanilla)[0].gain
    );
}
