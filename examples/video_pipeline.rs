//! A video-encoding scenario (the paper's Table 3 Mix6): bodytrack
//! (computer vision) plus two x264 encoder instances with different
//! frame rates and inputs, 4 worker threads each.
//!
//! Demonstrates the closed loop in action: the example prints where
//! each thread sits at every epoch, showing SmartBalance steering the
//! motion-estimation-heavy x264 threads toward strong cores and the
//! branchy/irregular phases toward efficient ones.
//!
//! ```sh
//! cargo run --release -p smartbalance --example video_pipeline
//! ```

use archsim::Platform;
use kernelsim::{System, SystemConfig};
use smartbalance::{ExperimentSpec, SmartBalance};
use workloads::MixId;

fn main() {
    let platform = Platform::quad_heterogeneous();
    let core_names: Vec<String> = platform
        .cores()
        .map(|c| platform.core_config(c).name.clone())
        .collect();

    let mut sys = System::new(platform.clone(), SystemConfig::default());
    let mut labels = Vec::new();
    for member in MixId(6).members() {
        for (k, worker) in ExperimentSpec::parallelize(&member.scaled(0.4), 4)
            .into_iter()
            .enumerate()
        {
            labels.push(format!("{}#{k}", member.name()));
            sys.spawn(worker);
        }
    }
    println!(
        "spawned {} threads of Mix6 (bodytrack + x264_H_crew + x264_L_bow)",
        labels.len()
    );

    let mut policy = SmartBalance::new(&platform);
    let mut epoch = 0u64;
    while sys.live_tasks() > 0 && epoch < 200 {
        sys.run_epoch(&mut policy);
        epoch += 1;
        if epoch % 5 == 1 {
            // Per-core occupancy snapshot.
            let mut per_core: Vec<Vec<&str>> = vec![Vec::new(); platform.num_cores()];
            for (i, t) in sys.tasks().iter().enumerate() {
                if !t.is_exited() {
                    per_core[t.core().0].push(&labels[i]);
                }
            }
            print!("epoch {epoch:>3}: ");
            for (j, tasks) in per_core.iter().enumerate() {
                print!("{}[{}] ", core_names[j], tasks.join(","));
            }
            println!();
        }
    }

    let stats = sys.stats();
    println!(
        "\ncompleted in {epoch} epochs: {:.3e} instr, {:.3} J, {:.3e} instr/J, {} migrations",
        stats.total_instructions as f64,
        stats.total_energy_j,
        stats.instructions_per_joule(),
        stats.migrations,
    );
    if let Some(outcome) = policy.last_outcome() {
        println!(
            "last balancing pass: J {:.3} -> {:.3} GIPS/W over {} iterations",
            outcome.initial_objective, outcome.objective, outcome.iterations
        );
    }
}
