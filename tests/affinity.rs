//! CPU-affinity integration tests: the paper notes that "special
//! constraints can easily be included" — every layer (system,
//! optimizer, all three policies) must honour `cpus_allowed` masks.

use archsim::{CoreId, CoreTypeId, Platform, WorkloadCharacteristics};
use kernelsim::{Allocation, System, SystemConfig, Task, TaskId};
use smartbalance::{
    anneal, AnnealParams, CharacterizationMatrices, Goal, GtsBalancer, Objective, SmartBalance,
    VanillaBalancer,
};
use workloads::WorkloadProfile;

fn hog(name: &str) -> WorkloadProfile {
    WorkloadProfile::uniform(name, WorkloadCharacteristics::balanced(), u64::MAX / 8)
}

#[test]
fn system_refuses_migration_outside_mask() {
    let platform = Platform::quad_heterogeneous();
    let mut sys = System::new(platform, SystemConfig::default());
    let tid = sys.next_task_id();
    sys.spawn_task(Task::new(tid, hog("pinned"), CoreId(1)).with_affinity(0b0110));
    let mut alloc = Allocation::new();
    alloc.assign(tid, CoreId(0)); // forbidden by the mask
    sys.apply_allocation(&alloc);
    assert_eq!(sys.task(tid).core(), CoreId(1), "forbidden move ignored");
    alloc.assign(tid, CoreId(2)); // allowed
    sys.apply_allocation(&alloc);
    assert_eq!(sys.task(tid).core(), CoreId(2));
}

#[test]
fn annealer_never_violates_affinity() {
    // A thread pinned to cores {2,3} must never land on 0/1 even if
    // core 0 is overwhelmingly more efficient for it.
    let mut m = CharacterizationMatrices::new(
        (0..4).map(TaskId).collect(),
        (0..4).map(CoreTypeId).collect(),
        vec![0.01; 4],
    );
    for i in 0..4 {
        for j in 0..4 {
            // Core 0 is great for everyone.
            let (ips, p) = if j == 0 { (4.0e9, 0.5) } else { (1.0e9, 1.0) };
            m.set(i, j, ips, p, true);
        }
    }
    m.set_allowed(0, 0b1100);
    let obj = Objective::new(&m, Goal::EnergyEfficiency);
    for seed in 0..10 {
        let out = anneal(&obj, &[2, 1, 1, 1], AnnealParams::cooled(400), seed);
        assert!(
            out.allocation[0] == 2 || out.allocation[0] == 3,
            "seed {seed}: pinned thread ended on core {}",
            out.allocation[0]
        );
    }
}

#[test]
fn smartbalance_honours_pinned_threads() {
    let platform = Platform::quad_heterogeneous();
    let mut sys = System::new(platform.clone(), SystemConfig::default());
    let pinned = sys.next_task_id();
    // A compute hog pinned to the Small core — the worst possible
    // placement, which the optimizer would otherwise fix immediately.
    sys.spawn_task(
        Task::new(
            pinned,
            WorkloadProfile::uniform(
                "pinned-compute",
                WorkloadCharacteristics::compute_bound(),
                u64::MAX / 8,
            ),
            CoreId(3),
        )
        .with_affinity(0b1000),
    );
    sys.spawn_on(hog("free"), CoreId(0));
    let mut policy = SmartBalance::new(&platform);
    for _ in 0..6 {
        sys.run_epoch(&mut policy);
    }
    assert_eq!(sys.task(pinned).core(), CoreId(3), "pin must hold");
    assert_eq!(sys.task(pinned).migrations(), 0);
}

#[test]
fn vanilla_respects_affinity_when_spreading() {
    let platform = Platform::quad_heterogeneous();
    let mut sys = System::new(platform, SystemConfig::default());
    // Four hogs stacked on core 0; two of them may only use {0,1}.
    for i in 0..2 {
        let tid = sys.next_task_id();
        sys.spawn_task(Task::new(tid, hog(&format!("lim{i}")), CoreId(0)).with_affinity(0b0011));
    }
    for i in 0..2 {
        sys.spawn_on(hog(&format!("free{i}")), CoreId(0));
    }
    let mut policy = VanillaBalancer::new();
    for _ in 0..6 {
        sys.run_epoch(&mut policy);
    }
    for t in sys.tasks() {
        assert!(
            t.allows_core(t.core()),
            "task {} on forbidden core {}",
            t.id(),
            t.core()
        );
    }
}

#[test]
fn gts_respects_affinity_even_for_busy_threads() {
    let platform = Platform::octa_big_little();
    let mut sys = System::new(platform.clone(), SystemConfig::default());
    // A CPU hog pinned to the little cluster: GTS wants it big but may
    // not move it there.
    let tid = sys.next_task_id();
    sys.spawn_task(Task::new(tid, hog("pinned-hog"), CoreId(5)).with_affinity(0b1111_0000));
    let mut policy = GtsBalancer::new();
    for _ in 0..5 {
        sys.run_epoch(&mut policy);
    }
    let core = sys.task(tid).core();
    assert!(
        core.0 >= 4,
        "pinned hog must stay on the little cluster, is on {core}"
    );
}

#[test]
fn affinity_builder_validates() {
    let t = Task::new(TaskId(0), hog("x"), CoreId(1)).with_affinity(0b0010);
    assert!(t.allows_core(CoreId(1)));
    assert!(!t.allows_core(CoreId(0)));
    let result = std::panic::catch_unwind(|| {
        Task::new(TaskId(0), hog("x"), CoreId(1)).with_affinity(0b0001)
    });
    assert!(
        result.is_err(),
        "mask excluding the initial core must panic"
    );
    let result =
        std::panic::catch_unwind(|| Task::new(TaskId(0), hog("x"), CoreId(0)).with_affinity(0));
    assert!(result.is_err(), "empty mask must panic");
}
