//! Behavioural tests of the two baseline policies against the kernel
//! simulator (not just unit-level report fixtures): the vanilla
//! balancer's heterogeneity blindness and GTS's utilization-threshold
//! clustering, as characterized in paper Table 1.

use archsim::{CoreId, Platform, WorkloadCharacteristics};
use kernelsim::{System, SystemConfig};
use smartbalance::{GtsBalancer, VanillaBalancer};
use workloads::{SleepPattern, WorkloadProfile};

fn cpu_hog(name: &str) -> WorkloadProfile {
    WorkloadProfile::uniform(name, WorkloadCharacteristics::balanced(), u64::MAX / 8)
}

#[test]
fn vanilla_equalizes_counts_blind_to_core_types() {
    // Eight equal CPU hogs stacked onto two cores: vanilla must end up
    // with two per core — including the Huge core (that is its flaw).
    let platform = Platform::quad_heterogeneous();
    let mut sys = System::new(platform.clone(), SystemConfig::default());
    for i in 0..8 {
        sys.spawn_on(cpu_hog(&format!("w{i}")), CoreId(i % 2));
    }
    let mut policy = VanillaBalancer::new();
    for _ in 0..4 {
        sys.run_epoch(&mut policy);
    }
    let mut per_core = [0usize; 4];
    for t in sys.tasks() {
        per_core[t.core().0] += 1;
    }
    assert_eq!(
        per_core,
        [2, 2, 2, 2],
        "vanilla spreads evenly: {per_core:?}"
    );
}

#[test]
fn vanilla_is_stable_once_balanced() {
    let platform = Platform::quad_heterogeneous();
    let mut sys = System::new(platform.clone(), SystemConfig::default());
    for i in 0..4 {
        sys.spawn_on(cpu_hog(&format!("w{i}")), CoreId(i));
    }
    let mut policy = VanillaBalancer::new();
    for _ in 0..6 {
        sys.run_epoch(&mut policy);
    }
    assert_eq!(sys.total_migrations(), 0, "balanced system must not churn");
}

#[test]
fn gts_up_migrates_busy_threads_to_big_cluster() {
    let platform = Platform::octa_big_little();
    let mut sys = System::new(platform.clone(), SystemConfig::default());
    // Four CPU hogs started on little cores (4..7).
    let mut ids = Vec::new();
    for i in 0..4 {
        ids.push(sys.spawn_on(cpu_hog(&format!("hog{i}")), CoreId(4 + i)));
    }
    let mut policy = GtsBalancer::new();
    for _ in 0..4 {
        sys.run_epoch(&mut policy);
    }
    for id in ids {
        let core = sys.task(id).core();
        assert!(core.0 < 4, "hog {id} should be on a big core, is on {core}");
    }
}

#[test]
fn gts_down_migrates_idle_threads_to_little_cluster() {
    let platform = Platform::octa_big_little();
    let mut sys = System::new(platform.clone(), SystemConfig::default());
    // Mostly-sleeping UI threads started on big cores.
    let mut ids = Vec::new();
    for i in 0..3 {
        let p = cpu_hog(&format!("ui{i}")).with_sleep(SleepPattern::new(500_000, 20_000_000));
        ids.push(sys.spawn_on(p, CoreId(i)));
    }
    let mut policy = GtsBalancer::new();
    for _ in 0..6 {
        sys.run_epoch(&mut policy);
    }
    for id in ids {
        let core = sys.task(id).core();
        assert!(
            core.0 >= 4,
            "idle thread {id} should be on a little core, is on {core}"
        );
    }
}

#[test]
fn gts_ignores_memory_boundness() {
    // The Table 1 gap: a 100 %-utilization but memory-bound thread is
    // up-migrated by GTS even though a big core barely helps it — the
    // behaviour SmartBalance's per-thread IPC awareness fixes.
    let platform = Platform::octa_big_little();
    let mut sys = System::new(platform.clone(), SystemConfig::default());
    let memory_hog = sys.spawn_on(
        WorkloadProfile::uniform(
            "memhog",
            WorkloadCharacteristics::memory_bound(),
            u64::MAX / 8,
        ),
        CoreId(5),
    );
    let mut policy = GtsBalancer::new();
    for _ in 0..4 {
        sys.run_epoch(&mut policy);
    }
    assert!(
        sys.task(memory_hog).core().0 < 4,
        "GTS up-migrates on utilization alone"
    );

    // SmartBalance, for contrast, keeps it on the little cluster.
    let mut sys2 = System::new(platform.clone(), SystemConfig::default());
    let memory_hog2 = sys2.spawn_on(
        WorkloadProfile::uniform(
            "memhog",
            WorkloadCharacteristics::memory_bound(),
            u64::MAX / 8,
        ),
        CoreId(5),
    );
    let mut smart = smartbalance::SmartBalance::new(&platform);
    for _ in 0..4 {
        sys2.run_epoch(&mut smart);
    }
    assert!(
        sys2.task(memory_hog2).core().0 >= 4,
        "SmartBalance keeps a memory-bound hog on the little cluster"
    );
}

#[test]
fn gts_spreads_load_within_cluster() {
    let platform = Platform::octa_big_little();
    let mut sys = System::new(platform.clone(), SystemConfig::default());
    for i in 0..4 {
        sys.spawn_on(cpu_hog(&format!("hog{i}")), CoreId(0));
    }
    let mut policy = GtsBalancer::new();
    for _ in 0..4 {
        sys.run_epoch(&mut policy);
    }
    let mut per_core = [0usize; 8];
    for t in sys.tasks() {
        per_core[t.core().0] += 1;
    }
    assert_eq!(
        &per_core[..4],
        &[1, 1, 1, 1],
        "one hog per big core: {per_core:?}"
    );
}
