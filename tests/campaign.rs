//! Campaign crash-safety acceptance tests: a killed campaign resumes
//! from its checkpoint journal without recomputing completed cells and
//! reproduces the uninterrupted report byte-for-byte (canonicalized);
//! a deterministically failing cell climbs the retry ladder, lands in
//! quarantine, and never takes the rest of the grid with it.

use std::fs;
use std::path::PathBuf;

use archsim::{Platform, WorkloadCharacteristics};
use campaign::{Campaign, CampaignConfig, CampaignJob, CampaignReport, CheckpointJournal};
use smartbalance::{ExperimentSpec, Policy};
use workloads::WorkloadProfile;

fn tiny_spec(name: &str, instructions: u64) -> ExperimentSpec {
    ExperimentSpec::new(
        name,
        Platform::quad_heterogeneous(),
        vec![
            WorkloadProfile::uniform("t0", WorkloadCharacteristics::balanced(), instructions),
            WorkloadProfile::uniform("t1", WorkloadCharacteristics::compute_bound(), instructions),
        ],
    )
    .with_max_epochs(60)
}

/// A 6-cell grid: three specs under two policies each.
fn grid() -> Vec<CampaignJob> {
    let mut jobs = Vec::new();
    for (s, spec_name) in ["alpha", "beta", "gamma"].iter().enumerate() {
        for policy in [Policy::Vanilla, Policy::Smart] {
            let index = jobs.len();
            jobs.push(CampaignJob::new(
                index,
                tiny_spec(spec_name, 400_000 + 100_000 * s as u64),
                policy,
            ));
        }
    }
    jobs
}

fn journal_path(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("campaign-acceptance-tests");
    fs::create_dir_all(&dir).expect("temp dir creates");
    let path = dir.join(format!("{test}.jsonl"));
    let _ = fs::remove_file(&path);
    let _ = fs::remove_file(dir.join(format!("{test}.jsonl.tmp")));
    path
}

fn canonical_bytes(report: &CampaignReport) -> String {
    serde_json::to_string(&report.canonicalized()).expect("report serializes")
}

#[test]
fn uninterrupted_campaign_completes_every_cell() {
    let path = journal_path("uninterrupted");
    let journal = CheckpointJournal::load(&path).expect("fresh journal");
    let mut campaign = Campaign::new(grid(), CampaignConfig::default(), journal);
    let report = campaign.run().expect("journal flushes");
    assert!(report.is_complete());
    assert!(!report.interrupted);
    assert_eq!(report.cells, 6);
    assert_eq!(report.completed.len(), 6);
    assert_eq!(report.poisoned.len(), 0);
    assert_eq!(report.retries_total, 0);
    assert_eq!(report.resumed_cells, 0);
    assert_eq!(report.executed_cells, 6);
    assert_eq!(campaign.journal().len(), 6, "every cell checkpointed");
    // Cells are reported in grid order with their grid indices.
    let indices: Vec<usize> = report.completed.iter().map(|c| c.index).collect();
    assert_eq!(indices, vec![0, 1, 2, 3, 4, 5]);
}

#[test]
fn killed_campaign_resumes_without_recomputation_and_matches_bytes() {
    // Reference: one straight run.
    let ref_path = journal_path("kill-resume-reference");
    let journal = CheckpointJournal::load(&ref_path).expect("fresh journal");
    let mut reference = Campaign::new(grid(), CampaignConfig::default(), journal);
    let reference_report = reference.run().expect("journal flushes");
    assert!(reference_report.is_complete());

    // "Kill" a second campaign after two cells: the per-run cell
    // budget stops the process exactly as SIGKILL would, after the
    // journal has flushed the completed prefix.
    let path = journal_path("kill-resume");
    let journal = CheckpointJournal::load(&path).expect("fresh journal");
    let interrupted_config = CampaignConfig {
        flush_every: 1,
        max_cells_this_run: Some(2),
        ..CampaignConfig::default()
    };
    let mut first = Campaign::new(grid(), interrupted_config, journal);
    let first_report = first.run().expect("journal flushes");
    assert!(first_report.interrupted);
    assert_eq!(first_report.executed_cells, 2);
    assert!(!first_report.is_complete());

    // Resume in a brand-new runner (fresh process, same journal path).
    let journal = CheckpointJournal::load(&path).expect("journal replays");
    assert_eq!(journal.len(), 2, "the killed run left two checkpoints");
    let mut resumed = Campaign::new(grid(), CampaignConfig::default(), journal);
    let resumed_report = resumed.run().expect("journal flushes");
    assert!(resumed_report.is_complete());
    assert_eq!(resumed_report.resumed_cells, 2, "replayed, not recomputed");
    assert_eq!(
        resumed_report.executed_cells, 4,
        "only the pending cells ran"
    );

    assert_eq!(
        canonical_bytes(&resumed_report),
        canonical_bytes(&reference_report),
        "resumed campaign must be byte-identical to the uninterrupted run"
    );
}

#[test]
fn deterministic_panic_is_retried_then_quarantined_and_grid_survives() {
    // IKS asserts a paired big.LITTLE platform; on the 4-type quad it
    // panics deterministically — the canonical poisoned cell.
    let mut jobs = grid();
    let poisoned_index = jobs.len();
    jobs.push(CampaignJob::new(
        poisoned_index,
        tiny_spec("poisoned", 400_000),
        Policy::Iks,
    ));

    let path = journal_path("quarantine");
    let journal = CheckpointJournal::load(&path).expect("fresh journal");
    let config = CampaignConfig {
        max_retries: 2,
        ..CampaignConfig::default()
    };
    let mut campaign = Campaign::new(jobs, config, journal);
    let report = campaign.run().expect("journal flushes");

    assert!(report.is_complete(), "quarantine is terminal, not fatal");
    assert_eq!(report.completed.len(), 6, "healthy cells all finished");
    assert_eq!(report.poisoned.len(), 1);
    let cell = &report.poisoned[0];
    assert_eq!(cell.index, poisoned_index);
    assert_eq!(cell.attempts, 3, "first try + max_retries retries");
    assert!(
        cell.error.contains("exactly 2 core types"),
        "the panic payload is preserved: {}",
        cell.error
    );
    assert_eq!(report.retries_total, 2);

    // Forensics: every rung of the retry ladder is on the record, and
    // each one carries the same deterministic panic payload.
    let log = cell
        .attempts_log
        .as_ref()
        .expect("freshly quarantined cells always carry the attempt log");
    assert_eq!(log.len(), 3);
    for (k, attempt) in log.iter().enumerate() {
        assert_eq!(attempt.attempt as usize, k + 1);
        assert!(
            attempt.error.contains("exactly 2 core types"),
            "attempt {}: {}",
            attempt.attempt,
            attempt.error
        );
    }
    // IKS panics inside the very first rebalance, before any epoch
    // span closes — the flight recorder is present but empty.
    let flight = cell.flight.as_ref().expect("flight recorder present");
    assert!(flight.spans.is_empty());
}

#[test]
fn flight_recorder_preserves_the_last_epochs_of_a_budget_quarantine() {
    // A runaway cell stopped by the epoch watchdog: the quarantine
    // record must carry the tail of its epoch history — capped by the
    // recorder ring — so the hang is debuggable post mortem.
    let hung = CampaignJob::new(
        0,
        tiny_spec("hung-forensics", 2_000_000_000).with_max_epochs(10_000),
        Policy::Vanilla,
    );
    let path = journal_path("flight-recorder");
    let journal = CheckpointJournal::load(&path).expect("fresh journal");
    let config = CampaignConfig {
        max_retries: 1,
        max_epochs_per_job: Some(5),
        flight_recorder_epochs: 3,
        ..CampaignConfig::default()
    };
    let mut campaign = Campaign::new(vec![hung], config, journal);
    let report = campaign.run().expect("journal flushes");

    assert_eq!(report.poisoned.len(), 1);
    let cell = &report.poisoned[0];
    let log = cell.attempts_log.as_ref().expect("attempt log present");
    assert_eq!(log.len(), 2, "first try + one retry");
    for attempt in log {
        assert!(
            attempt.error.contains("epoch budget exhausted"),
            "{}",
            attempt.error
        );
    }
    let flight = cell.flight.as_ref().expect("flight recorder present");
    assert_eq!(
        flight.spans.len(),
        3,
        "the ring keeps exactly flight_recorder_epochs spans"
    );
    assert_eq!(
        flight.dropped_epochs, 2,
        "5 budgeted epochs minus a 3-span ring"
    );
    let epochs: Vec<u64> = flight.spans.iter().map(|s| s.epoch).collect();
    assert!(
        epochs.windows(2).all(|w| w[1] == w[0] + 1),
        "the retained spans are the consecutive tail: {epochs:?}"
    );

    // The forensics survive the journal round trip: a resumed campaign
    // replays them rather than re-running the cell.
    let journal = CheckpointJournal::load(&path).expect("journal replays");
    let hung = CampaignJob::new(
        0,
        tiny_spec("hung-forensics", 2_000_000_000).with_max_epochs(10_000),
        Policy::Vanilla,
    );
    let mut resumed = Campaign::new(vec![hung], CampaignConfig::default(), journal);
    let resumed_report = resumed.run().expect("journal flushes");
    assert_eq!(resumed_report.resumed_cells, 1, "replayed, not recomputed");
    let replayed = &resumed_report.poisoned[0];
    assert_eq!(
        replayed.flight.as_ref().map(|f| f.spans.len()),
        Some(3),
        "flight spans survive the disk round trip"
    );
    assert_eq!(
        replayed.attempts_log.as_ref().map(Vec::len),
        Some(2),
        "attempt log survives the disk round trip"
    );
}

#[test]
fn epoch_and_slice_budgets_quarantine_runaway_cells() {
    // A workload far too large to finish inside the clamped epoch
    // budget stands in for a hung cell.
    let hung = CampaignJob::new(
        0,
        tiny_spec("hung", 2_000_000_000).with_max_epochs(10_000),
        Policy::Vanilla,
    );
    let path = journal_path("epoch-budget");
    let journal = CheckpointJournal::load(&path).expect("fresh journal");
    let config = CampaignConfig {
        max_retries: 0,
        max_epochs_per_job: Some(5),
        ..CampaignConfig::default()
    };
    let mut campaign = Campaign::new(vec![hung], config, journal);
    let report = campaign.run().expect("journal flushes");
    assert_eq!(report.poisoned.len(), 1);
    assert_eq!(report.poisoned[0].attempts, 1, "max_retries 0: one try");
    assert!(
        report.poisoned[0].error.contains("epoch budget exhausted"),
        "{}",
        report.poisoned[0].error
    );

    // A healthy cell under an absurdly small slice budget trips the
    // post-hoc classifier the same way.
    let busy = CampaignJob::new(0, tiny_spec("busy", 400_000), Policy::Vanilla);
    let path = journal_path("slice-budget");
    let journal = CheckpointJournal::load(&path).expect("fresh journal");
    let config = CampaignConfig {
        max_retries: 0,
        max_slices_per_job: Some(1),
        ..CampaignConfig::default()
    };
    let mut campaign = Campaign::new(vec![busy], config, journal);
    let report = campaign.run().expect("journal flushes");
    assert_eq!(report.poisoned.len(), 1);
    assert!(
        report.poisoned[0].error.contains("slice budget exceeded"),
        "{}",
        report.poisoned[0].error
    );
}

#[test]
fn stop_file_requests_graceful_shutdown_with_partial_report() {
    let path = journal_path("stop-file");
    let stop = path.with_extension("stop");
    let _ = fs::remove_file(&stop);

    // First: complete two cells so the journal has something to keep.
    let journal = CheckpointJournal::load(&path).expect("fresh journal");
    let config = CampaignConfig {
        flush_every: 1,
        max_cells_this_run: Some(2),
        ..CampaignConfig::default()
    };
    let mut campaign = Campaign::new(grid(), config, journal);
    campaign.run().expect("journal flushes");

    // Then: a stop request present at startup halts before any new
    // work, but the partial report still carries the completed cells.
    fs::write(&stop, b"stop").expect("stop file writes");
    let journal = CheckpointJournal::load(&path).expect("journal replays");
    let config = CampaignConfig {
        stop_file: Some(stop.clone()),
        ..CampaignConfig::default()
    };
    let mut campaign = Campaign::new(grid(), config, journal);
    let report = campaign.run().expect("journal flushes");
    let _ = fs::remove_file(&stop);

    assert!(report.interrupted, "stop file wins before the first batch");
    assert_eq!(report.executed_cells, 0, "no new work after the request");
    assert_eq!(report.resumed_cells, 2);
    assert_eq!(report.completed.len(), 2, "partial report keeps the prefix");
}

#[test]
fn resume_tolerates_a_torn_journal_tail() {
    // Complete two cells, then append garbage — the torn tail a
    // non-atomic writer would leave. Resume must replay the intact
    // records, recompute only what the tail lost, and still match the
    // reference bytes.
    let ref_path = journal_path("torn-reference");
    let journal = CheckpointJournal::load(&ref_path).expect("fresh journal");
    let mut reference = Campaign::new(grid(), CampaignConfig::default(), journal);
    let reference_report = reference.run().expect("journal flushes");

    let path = journal_path("torn");
    let journal = CheckpointJournal::load(&path).expect("fresh journal");
    let config = CampaignConfig {
        flush_every: 1,
        max_cells_this_run: Some(2),
        ..CampaignConfig::default()
    };
    let mut first = Campaign::new(grid(), config, journal);
    first.run().expect("journal flushes");
    let mut text = fs::read_to_string(&path).expect("journal readable");
    text.push_str("{\"Completed\":{\"id\":\"feedface00");
    fs::write(&path, text).expect("tear the tail");

    let journal = CheckpointJournal::load(&path).expect("load tolerates tail");
    assert_eq!(journal.skipped_lines(), 1);
    assert_eq!(journal.len(), 2);
    let mut resumed = Campaign::new(grid(), CampaignConfig::default(), journal);
    let resumed_report = resumed.run().expect("journal flushes");
    assert!(resumed_report.is_complete());
    assert_eq!(
        canonical_bytes(&resumed_report),
        canonical_bytes(&reference_report)
    );
}
