//! Closed-loop behaviour tests: how the sense → predict → balance loop
//! evolves across epochs — convergence, reaction to phase changes,
//! stale-sample handling for interactive threads.

use archsim::{CoreId, Platform, WorkloadCharacteristics};
use kernelsim::{System, SystemConfig};
use smartbalance::{ExperimentSpec, SmartBalance};
use workloads::{Phase, SleepPattern, WorkloadProfile};

#[test]
fn allocation_converges_and_stops_migrating() {
    // With a stationary workload the closed loop should settle: most
    // migrations happen in the first epochs and then stop.
    let platform = Platform::quad_heterogeneous();
    let mut sys = System::new(platform.clone(), SystemConfig::default());
    for (i, w) in [
        WorkloadCharacteristics::compute_bound(),
        WorkloadCharacteristics::memory_bound(),
        WorkloadCharacteristics::branch_bound(),
        WorkloadCharacteristics::balanced(),
    ]
    .iter()
    .enumerate()
    {
        sys.spawn_on(
            WorkloadProfile::uniform(format!("w{i}"), *w, u64::MAX / 4),
            CoreId(i % 4),
        );
    }
    let mut policy = SmartBalance::new(&platform);
    for _ in 0..5 {
        sys.run_epoch(&mut policy);
    }
    let early = sys.total_migrations();
    for _ in 0..10 {
        sys.run_epoch(&mut policy);
    }
    let late = sys.total_migrations() - early;
    assert!(
        late <= 2,
        "stationary workload should stop migrating: {late} late migrations (early {early})"
    );
}

#[test]
fn reacts_to_phase_change() {
    // A thread that flips from compute-bound to memory-bound mid-run
    // should be moved off the big core after the flip becomes visible
    // in its counters.
    let platform = Platform::quad_heterogeneous();
    let mut sys = System::new(platform.clone(), SystemConfig::default());
    // Compute phase sized for ~20 epochs on the Huge core, then a long
    // memory phase.
    let profile = WorkloadProfile::new(
        "shifter",
        vec![
            Phase::new(WorkloadCharacteristics::compute_bound(), 1_500_000_000),
            Phase::new(WorkloadCharacteristics::memory_bound(), u64::MAX / 8),
        ],
    );
    let tid = sys.spawn_on(profile, CoreId(0));
    // Competition so the balancer has pressure to act.
    for i in 0..3 {
        sys.spawn_on(
            WorkloadProfile::uniform(
                format!("bg{i}"),
                WorkloadCharacteristics::balanced(),
                u64::MAX / 8,
            ),
            CoreId(1 + i),
        );
    }
    let mut policy = SmartBalance::new(&platform);
    let mut core_during_compute = None;
    let mut core_after_shift = None;
    for _ in 0..250 {
        sys.run_epoch(&mut policy);
        let t = sys.task(tid);
        // Record the placement while still inside the compute phase
        // (with margin so the sample reflects a settled decision).
        if t.progress() < 1_200_000_000 {
            core_during_compute = Some(t.core());
        }
        // The compute phase lasts 1.5e9 instructions; wait until the
        // memory phase has been visible for a while.
        if t.progress() > 2_500_000_000 {
            core_after_shift = Some(t.core());
            break;
        }
    }
    let during = core_during_compute.expect("sampled during compute");
    let after = core_after_shift.expect("reached memory phase");
    let strength = |c: CoreId| platform.core_config(c).peak_ips();
    assert!(
        strength(after) <= strength(during),
        "after turning memory-bound the thread must not sit on a stronger core \
         (during: {during}, after: {after})"
    );
}

#[test]
fn interactive_thread_keeps_cached_signature() {
    // A mostly-sleeping thread is balanced using its cached signature
    // rather than bouncing to the prior every epoch.
    let platform = Platform::quad_heterogeneous();
    let mut sys = System::new(platform.clone(), SystemConfig::default());
    let profile = WorkloadProfile::uniform(
        "sleepy",
        WorkloadCharacteristics::compute_bound(),
        u64::MAX / 4,
    )
    // 1 ms burst every 100 ms: many epochs contain no sample at all.
    .with_sleep(SleepPattern::new(2_000_000, 100_000_000));
    let tid = sys.spawn_on(profile, CoreId(0));
    let mut policy = SmartBalance::new(&platform);
    for _ in 0..30 {
        sys.run_epoch(&mut policy);
    }
    let t = sys.task(tid);
    assert!(!t.is_exited());
    // The thread must not have been ping-ponged around: a couple of
    // placement decisions at most.
    assert!(
        t.migrations() <= 4,
        "stale-sample thread was migrated {} times",
        t.migrations()
    );
}

#[test]
fn exited_threads_leave_the_loop() {
    let platform = Platform::quad_heterogeneous();
    let mut sys = System::new(platform.clone(), SystemConfig::default());
    let quick = sys.spawn_on(
        WorkloadProfile::uniform("quick", WorkloadCharacteristics::balanced(), 1_000_000),
        CoreId(1),
    );
    sys.spawn_on(
        WorkloadProfile::uniform("long", WorkloadCharacteristics::balanced(), u64::MAX / 4),
        CoreId(2),
    );
    let mut policy = SmartBalance::new(&platform);
    for _ in 0..5 {
        sys.run_epoch(&mut policy);
    }
    assert!(sys.task(quick).is_exited());
    assert_eq!(sys.live_tasks(), 1);
    // Five more epochs must not touch the dead thread.
    let migrations_before = sys.task(quick).migrations();
    for _ in 0..5 {
        sys.run_epoch(&mut policy);
    }
    assert_eq!(sys.task(quick).migrations(), migrations_before);
}

#[test]
fn spawned_mid_run_threads_get_balanced() {
    let platform = Platform::quad_heterogeneous();
    let mut sys = System::new(platform.clone(), SystemConfig::default());
    let mut policy = SmartBalance::new(&platform);
    sys.spawn_on(
        WorkloadProfile::uniform("first", WorkloadCharacteristics::balanced(), u64::MAX / 4),
        CoreId(0),
    );
    for _ in 0..3 {
        sys.run_epoch(&mut policy);
    }
    // Arrivals mid-run ("threads can enter and leave the system at any
    // time", Section 3).
    let late = sys.spawn_on(
        WorkloadProfile::uniform(
            "late-memory",
            WorkloadCharacteristics::memory_bound(),
            u64::MAX / 4,
        ),
        CoreId(0), // deliberately onto the busy Huge core
    );
    for _ in 0..6 {
        sys.run_epoch(&mut policy);
    }
    // The memory-bound latecomer should have been moved off Huge.
    assert_ne!(
        sys.task(late).core(),
        CoreId(0),
        "late memory-bound arrival should not stay on the Huge core"
    );
}

#[test]
fn experiment_spec_parallelize_roundtrip() {
    // Cross-crate sanity: parallelized bundles execute to completion
    // and commit (approximately) the original instruction budget.
    let platform = Platform::quad_heterogeneous();
    let bench = workloads::parsec::swaptions().scaled(0.02);
    let total = bench.total_instructions();
    let mut sys = System::new(platform.clone(), SystemConfig::default());
    for p in ExperimentSpec::parallelize(&bench, 4) {
        sys.spawn(p);
    }
    let mut policy = SmartBalance::new(&platform);
    let mut epochs = 0;
    while sys.live_tasks() > 0 && epochs < 500 {
        sys.run_epoch(&mut policy);
        epochs += 1;
    }
    assert_eq!(sys.live_tasks(), 0, "all workers finish");
    let committed = sys.stats().total_instructions;
    let diff = (committed as f64 - total as f64).abs() / total as f64;
    assert!(diff < 0.02, "work conservation: {committed} vs {total}");
}
