//! DVFS-as-heterogeneity integration tests — paper Section 3: cores
//! with identical micro-architecture at different nominal V/F points
//! are distinct core types, and SmartBalance must exploit them like any
//! other heterogeneity.

use archsim::{CoreConfig, CoreTypeId, Platform};
use smartbalance::{compare_policies, ExperimentSpec, Policy, PredictorSet};
use workloads::parsec;

/// Quad-core platform: one Big micro-architecture at four operating
/// points (a frequency island per core).
fn dvfs_platform() -> Platform {
    let types = CoreConfig::big().dvfs_ladder(&[
        (1.5e9, 0.80),
        (1.2e9, 0.75),
        (0.9e9, 0.68),
        (0.6e9, 0.60),
    ]);
    Platform::new(
        types,
        vec![CoreTypeId(0), CoreTypeId(1), CoreTypeId(2), CoreTypeId(3)],
    )
}

#[test]
fn predictor_trains_across_operating_points() {
    // Same µarch, different V/F: the cross-type prediction problem is
    // almost pure frequency scaling plus latency effects, and the
    // predictor should nail it.
    let platform = dvfs_platform();
    let predictors = PredictorSet::train(&platform, 200, 3);
    let corpus = workloads::SyntheticGenerator::new(5).corpus(60);
    for s in 0..4 {
        for d in 0..4 {
            if s == d {
                continue;
            }
            let (err, _) = smartbalance::predict::evaluate_pair(
                &predictors,
                &platform,
                &corpus,
                CoreTypeId(s),
                CoreTypeId(d),
            );
            assert!(err < 0.06, "{s}->{d}: DVFS-pair prediction error {err}");
        }
    }
}

#[test]
fn smartbalance_exploits_frequency_islands() {
    // A mixed workload on the DVFS platform: SmartBalance must beat
    // the frequency-blind vanilla balancer.
    let mut profiles = Vec::new();
    for name in ["blackscholes", "canneal", "streamcluster"] {
        let bench = parsec::by_name(name).expect("benchmark");
        profiles.extend(ExperimentSpec::parallelize(&bench.scaled(0.2), 2));
    }
    let spec = ExperimentSpec::new("dvfs", dvfs_platform(), profiles);
    let results = compare_policies(&spec, &[Policy::Vanilla, Policy::Smart]);
    assert!(results.iter().all(|r| r.completed));
    let ratio = results[1].efficiency_vs(&results[0]);
    assert!(
        ratio > 1.02,
        "SmartBalance should exploit V/F heterogeneity, got {ratio:.3}"
    );
}

#[test]
fn slower_points_win_energy_for_memory_bound_work() {
    // Memory-bound work should gravitate to the slowest/cheapest
    // operating point under the energy goal.
    use archsim::WorkloadCharacteristics;
    use kernelsim::{System, SystemConfig};
    use smartbalance::SmartBalance;
    use workloads::WorkloadProfile;

    let platform = dvfs_platform();
    let mut sys = System::new(platform.clone(), SystemConfig::default());
    let mem = sys.spawn_on(
        WorkloadProfile::uniform("mem", WorkloadCharacteristics::memory_bound(), u64::MAX / 8),
        archsim::CoreId(0), // fastest island
    );
    let mut policy = SmartBalance::new(&platform);
    for _ in 0..6 {
        sys.run_epoch(&mut policy);
    }
    let core = sys.task(mem).core().0;
    assert!(
        core >= 2,
        "memory-bound thread should sit on a slow island, is on core {core}"
    );
}
