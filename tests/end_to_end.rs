//! End-to-end integration tests: the full sense → predict → balance
//! pipeline running on the kernel simulator over real workloads,
//! checking the paper's headline directional claims.

use archsim::Platform;
use smartbalance::{compare_policies, ExperimentSpec, Policy};

/// A heterogeneous Table 3-style mix at a given scale.
fn mixed_spec(platform: Platform, scale: f64, threads: usize) -> ExperimentSpec {
    let mut profiles = Vec::new();
    for name in ["blackscholes", "canneal", "bodytrack", "streamcluster"] {
        let bench = workloads::parsec::by_name(name).expect("benchmark");
        profiles.extend(ExperimentSpec::parallelize(&bench.scaled(scale), threads));
    }
    ExperimentSpec::new("e2e", platform, profiles)
}

#[test]
fn smartbalance_beats_vanilla_on_heterogeneous_mix() {
    // The Fig. 4 headline: SmartBalance improves measured energy
    // efficiency over the vanilla balancer on the 4-type platform.
    let spec = mixed_spec(Platform::quad_heterogeneous(), 0.3, 2);
    let results = compare_policies(&spec, &[Policy::Vanilla, Policy::Smart]);
    assert!(results.iter().all(|r| r.completed), "both runs finish");
    let ratio = results[1].efficiency_vs(&results[0]);
    assert!(
        ratio > 1.10,
        "SmartBalance should clearly beat vanilla, got {ratio:.3}"
    );
}

#[test]
fn smartbalance_beats_gts_on_big_little() {
    // The Fig. 5 headline on the octa-core big.LITTLE platform.
    let spec = mixed_spec(Platform::octa_big_little(), 0.3, 2);
    let results = compare_policies(&spec, &[Policy::Gts, Policy::Smart]);
    assert!(results.iter().all(|r| r.completed));
    let ratio = results[1].efficiency_vs(&results[0]);
    assert!(ratio > 1.05, "SmartBalance should beat GTS, got {ratio:.3}");
}

#[test]
fn all_work_is_conserved_across_policies() {
    // Every policy must commit the same total instructions — balancing
    // may change *where* and *when*, never *how much*.
    // Note: GTS is excluded — it (correctly) refuses the 4-type
    // platform; its conservation is covered by the big.LITTLE tests.
    let spec = mixed_spec(Platform::quad_heterogeneous(), 0.1, 2);
    let results = compare_policies(&spec, &[Policy::None, Policy::Vanilla, Policy::Smart]);
    let baseline = results[0].stats.total_instructions as f64;
    for r in &results[1..] {
        let diff = (r.stats.total_instructions as f64 - baseline).abs() / baseline;
        assert!(
            diff < 0.01,
            "{} committed {} vs {} instructions",
            r.policy,
            r.stats.total_instructions,
            baseline
        );
    }
}

#[test]
fn full_runs_are_deterministic() {
    let run = || {
        let spec = mixed_spec(Platform::quad_heterogeneous(), 0.1, 2);
        let results = compare_policies(&spec, &[Policy::Smart]);
        (
            results[0].stats.total_instructions,
            results[0].stats.total_energy_j.to_bits(),
            results[0].stats.migrations,
        )
    };
    assert_eq!(run(), run(), "simulation + balancing must be reproducible");
}

#[test]
fn energy_accounting_is_consistent() {
    let spec = mixed_spec(Platform::quad_heterogeneous(), 0.1, 4);
    let results = compare_policies(&spec, &[Policy::Smart]);
    let stats = &results[0].stats;
    let per_core_sum: f64 = stats.per_core.iter().map(|c| c.energy_j).sum();
    assert!((per_core_sum - stats.total_energy_j).abs() < 1e-9);
    let per_core_instr: u64 = stats.per_core.iter().map(|c| c.instructions).sum();
    assert_eq!(per_core_instr, stats.total_instructions);
    // Busy + sleep accounts for the whole run on every core.
    for c in &stats.per_core {
        assert_eq!(c.busy_ns + c.sleep_ns, stats.elapsed_ns);
    }
}

#[test]
fn throughput_goal_finishes_faster_than_energy_goal() {
    use smartbalance::{run_experiment_with, Goal, RunOptions, SmartBalance, SmartBalanceConfig};
    let spec = mixed_spec(Platform::quad_heterogeneous(), 0.2, 2);
    let mut results = Vec::new();
    for goal in [Goal::Throughput, Goal::EnergyEfficiency] {
        let cfg = SmartBalanceConfig {
            goal,
            ..SmartBalanceConfig::default()
        };
        let mut policy = SmartBalance::with_config(&spec.platform, cfg);
        results.push(run_experiment_with(&spec, &mut policy, RunOptions::new()).result);
    }
    assert!(
        results[0].stats.elapsed_ns <= results[1].stats.elapsed_ns,
        "throughput goal must not be slower: {} vs {}",
        results[0].stats.elapsed_ns,
        results[1].stats.elapsed_ns
    );
    assert!(
        results[1].energy_efficiency() >= results[0].energy_efficiency(),
        "energy goal must not be less efficient"
    );
}
