//! Reference-vs-batched slice-engine parity: the batched engine is a
//! *performance* backend, so every run must be observationally
//! indistinguishable — bit-for-bit — from the reference interpreter,
//! under forced cross-type migrations, mid-epoch DVFS transitions, an
//! active sensor-fault plan, probabilistic migration failure, core
//! hotplug and full-level event tracing.
//!
//! The fingerprint is the JSON serialization of every [`EpochReport`]
//! (string equality implies bit equality of every `f64` inside), plus
//! the sensor totals, the dispatch count, the estimate-cache hit/miss
//! telemetry and — for the traced scenario — the exact CSV event
//! stream.

use archsim::{CoreId, CoreTypeId, FaultKind, FaultPlan, Platform};
use kernelsim::{
    Allocation, EngineKind, EpochReport, LoadBalancer, System, SystemConfig, TaskId, TraceLevel,
};
use workloads::SyntheticGenerator;

/// Deterministic stirring balancer: rotates every task one core to the
/// right each epoch, forcing cross-type migrations (every core of the
/// quad heterogeneous platform is its own type) and regularly moving
/// sleeping tasks across wake heaps.
struct Rotate {
    num_cores: usize,
    num_tasks: usize,
    epoch: usize,
}

impl LoadBalancer for Rotate {
    fn name(&self) -> &str {
        "rotate"
    }

    fn rebalance(&mut self, _platform: &Platform, _report: &EpochReport) -> Option<Allocation> {
        self.epoch += 1;
        let mut alloc = Allocation::new();
        for t in 0..self.num_tasks {
            alloc.assign(TaskId(t), CoreId((t + self.epoch) % self.num_cores));
        }
        Some(alloc)
    }
}

/// Which stress knobs a scenario run turns on.
#[derive(Debug, Clone, Copy, Default)]
struct Scenario {
    /// Mid-epoch DVFS retunes at epochs 4 and 9.
    dvfs: bool,
    /// A certain `StuckCounters` sensor fault from epoch 2.
    faults: bool,
    /// Every migration attempt fails with probability 0.5.
    migration_failure: bool,
    /// Core 2 offline for epochs 5..8 with a DVFS retune of its type
    /// while it is down.
    hotplug: bool,
    /// Full-level tracing (shrinks the run to [`TRACED_EPOCHS`]).
    trace: bool,
}

/// Everything observable about one run of the scenario.
struct RunTrace {
    /// serde_json fingerprint of every epoch's report, in order.
    fingerprints: Vec<String>,
    total_instructions: u64,
    total_energy_bits: u64,
    total_slices: u64,
    cache_hits: u64,
    cache_misses: u64,
    /// CSV dump of the event ring (empty unless `trace` was set).
    trace_csv: String,
}

const TASKS: usize = 10;
const EPOCHS: u32 = 16;
const TRACED_EPOCHS: u32 = 3;

/// Runs the parity scenario — 10 multi-phase tasks (half interactive)
/// on the quad heterogeneous platform, stirred by [`Rotate`] — on the
/// chosen engine and returns everything observable about it.
fn run(engine: EngineKind, cached: bool, sc: Scenario) -> RunTrace {
    let platform = Platform::quad_heterogeneous();
    let config = SystemConfig {
        engine,
        ..SystemConfig::default()
    };
    let mut sys = System::new(platform, config);
    assert_eq!(sys.engine_kind(), engine);
    sys.set_estimate_caching(cached);
    if sc.faults {
        sys.set_fault_plan(
            FaultPlan::new().inject(2, None, FaultKind::StuckCounters { prob: 1.0 }),
            0xFA17_2026,
        );
    }
    if sc.migration_failure {
        sys.set_migration_failure(0.5, 0xBAD);
    }
    if sc.trace {
        sys.enable_tracing(TraceLevel::Full, 1 << 20);
    }
    let mut gen = SyntheticGenerator::new(0xD1CE);
    for i in 0..TASKS {
        sys.spawn(gen.profile(format!("w{i}"), 5, u64::MAX / 64, i % 2 == 0));
    }
    let mut bal = Rotate {
        num_cores: 4,
        num_tasks: TASKS,
        epoch: 0,
    };
    let epochs = if sc.trace { TRACED_EPOCHS } else { EPOCHS };
    let mut fingerprints = Vec::new();
    for epoch in 0..epochs {
        if sc.dvfs && epoch == 4 {
            // Mid-epoch: run one period, then retune while cached
            // estimates (and batched run state) are hot.
            sys.run_period();
            sys.set_operating_point(CoreTypeId(1), 1.0e9, 0.72);
        }
        if sc.dvfs && epoch == 9 {
            sys.run_period();
            sys.set_operating_point(CoreTypeId(1), 1.9e9, 0.9);
            sys.set_operating_point(CoreTypeId(3), 0.4e9, 0.55);
        }
        if sc.hotplug {
            if epoch == 5 {
                sys.set_core_online(CoreId(2), false);
            }
            if epoch == 6 {
                // Retune the offline core's type so any estimate taken
                // before the outage is stale when the core returns.
                sys.set_operating_point(CoreTypeId(2), 0.9e9, 0.68);
            }
            if epoch == 8 {
                sys.set_core_online(CoreId(2), true);
            }
        }
        let report = sys.run_epoch(&mut bal);
        fingerprints.push(serde_json::to_string(&report).expect("serialize report"));
    }
    RunTrace {
        fingerprints,
        total_instructions: sys.sensors().total_instructions(),
        total_energy_bits: sys.sensors().total_energy_j().to_bits(),
        total_slices: sys.total_slices(),
        cache_hits: sys.estimate_cache().hits(),
        cache_misses: sys.estimate_cache().misses(),
        trace_csv: if sc.trace {
            assert_eq!(sys.tracer().dropped(), 0, "ring must not wrap");
            sys.tracer().to_csv()
        } else {
            String::new()
        },
    }
}

/// Asserts the full observable-equality contract between two runs.
fn assert_runs_identical(a: &RunTrace, b: &RunTrace, label: &str) {
    assert_eq!(
        a.fingerprints.len(),
        b.fingerprints.len(),
        "{label}: epoch count"
    );
    for (epoch, (fa, fb)) in a.fingerprints.iter().zip(b.fingerprints.iter()).enumerate() {
        assert_eq!(fa, fb, "{label}: EpochReport for epoch {epoch} diverged");
    }
    assert_eq!(a.total_instructions, b.total_instructions, "{label}");
    assert_eq!(
        a.total_energy_bits, b.total_energy_bits,
        "{label}: energy must match to the last bit"
    );
    assert_eq!(a.total_slices, b.total_slices, "{label}");
    assert_eq!(
        (a.cache_hits, a.cache_misses),
        (b.cache_hits, b.cache_misses),
        "{label}: estimate-cache telemetry diverged"
    );
    assert_eq!(a.trace_csv, b.trace_csv, "{label}: trace streams diverged");
}

#[test]
fn batched_matches_reference_on_the_full_stress_scenario() {
    let sc = Scenario {
        dvfs: true,
        faults: true,
        migration_failure: true,
        ..Scenario::default()
    };
    let reference = run(EngineKind::Reference, true, sc);
    let batched = run(EngineKind::Batched, true, sc);
    assert_runs_identical(&reference, &batched, "full stress");
    // Not vacuous: real work happened and the cache actually served it.
    assert!(reference.total_slices > 1_000);
    assert!(reference.cache_hits > reference.cache_misses);
}

#[test]
fn batched_parity_holds_across_hotplug() {
    let sc = Scenario {
        hotplug: true,
        dvfs: true,
        ..Scenario::default()
    };
    let reference = run(EngineKind::Reference, true, sc);
    let batched = run(EngineKind::Batched, true, sc);
    assert_runs_identical(&reference, &batched, "hotplug");
}

#[test]
fn hotplug_across_dvfs_does_not_replay_stale_estimates() {
    // A core going offline, its type being retuned, and the core coming
    // back must not let either engine replay estimates taken at the old
    // operating point: the cached runs must match the uncached oracle
    // bit-for-bit through the outage.
    let sc = Scenario {
        hotplug: true,
        ..Scenario::default()
    };
    let uncached = run(EngineKind::Reference, false, sc);
    let cached = run(EngineKind::Reference, true, sc);
    let batched = run(EngineKind::Batched, true, sc);
    for (epoch, (a, b)) in uncached
        .fingerprints
        .iter()
        .zip(cached.fingerprints.iter())
        .enumerate()
    {
        assert_eq!(a, b, "stale reference estimate visible at epoch {epoch}");
    }
    for (epoch, (a, b)) in uncached
        .fingerprints
        .iter()
        .zip(batched.fingerprints.iter())
        .enumerate()
    {
        assert_eq!(a, b, "stale batched replay visible at epoch {epoch}");
    }
    assert_eq!(uncached.total_energy_bits, cached.total_energy_bits);
    assert_eq!(uncached.total_energy_bits, batched.total_energy_bits);
    // The retune while core 2 was offline must actually change
    // execution once it is back, or this test proves nothing.
    let quiet = run(EngineKind::Reference, true, Scenario::default());
    assert_ne!(
        quiet.fingerprints[8..],
        cached.fingerprints[8..],
        "hotplug + DVFS must alter post-outage epochs"
    );
}

#[test]
fn full_trace_streams_are_identical() {
    // Per-event parity at TraceLevel::Full: every slice, sleep, wake,
    // exit and migration event, in order, with identical payloads.
    let sc = Scenario {
        trace: true,
        dvfs: false,
        ..Scenario::default()
    };
    let reference = run(EngineKind::Reference, true, sc);
    let batched = run(EngineKind::Batched, true, sc);
    assert!(
        reference.trace_csv.lines().count() > 100,
        "traced scenario too small to be meaningful"
    );
    assert_runs_identical(&reference, &batched, "traced");
}

#[test]
fn batched_with_caching_disabled_delegates_to_reference() {
    // With the estimate cache off there is nothing legal to replay; the
    // batched engine must fall back to reference behaviour (and still
    // report its configured kind).
    let sc = Scenario {
        dvfs: true,
        ..Scenario::default()
    };
    let reference = run(EngineKind::Reference, false, sc);
    let batched = run(EngineKind::Batched, false, sc);
    assert_runs_identical(&reference, &batched, "uncached delegation");
    assert_eq!(reference.cache_hits, 0);
}
