//! Fault-injection integration tests: the closed loop against sensor
//! corruption, hotplug and migration failure.
//!
//! The contract under test has two halves. First, the fault harness is
//! *transparent when empty*: wrapping the sensor bank with a no-op
//! `FaultPlan` must leave every reading and every `EpochReport`
//! bit-identical (same serde_json fingerprint discipline as
//! `hotpath_parity.rs`). Second, under real faults the balancer
//! *degrades instead of derailing*: it never panics, never places work
//! on an offline core, and retains most of the fault-free energy
//! efficiency (the issue's ≥ 70 % acceptance bar).

use archsim::{
    CoreId, CounterSample, FaultClass, FaultKind, FaultPlan, FaultySensorBank, Platform,
    SensorBank, SensorInterface,
};
use kernelsim::{MigrationReject, System, SystemConfig};
use smartbalance::{
    DegradeConfig, DegradeMode, Policy, ShardConfig, SmartBalance, SmartBalanceConfig,
    VanillaBalancer,
};
use workloads::SyntheticGenerator;

/// A deterministic pseudo-random counter stream for bank-level tests.
fn sample(i: u64) -> CounterSample {
    CounterSample {
        cy_busy: 1_000_000 + i * 7,
        cy_idle: 40_000 + i * 3,
        cy_mem_stall: 90_000 + i,
        instructions: 800_000 + i * 11,
        mem_instructions: 200_000 + i * 5,
        branch_instructions: 90_000 + i * 2,
        branch_mispredicts: 4_000 + i,
        l1d_accesses: 210_000 + i * 5,
        l1d_misses: 9_000 + i,
        l1i_accesses: 780_000 + i * 9,
        l1i_misses: 1_500 + i,
        dtlb_accesses: 210_000 + i * 5,
        dtlb_misses: 700 + i,
        itlb_accesses: 780_000 + i * 9,
        itlb_misses: 90 + i,
        ..CounterSample::default()
    }
}

/// Satellite (c): with an empty `FaultPlan`, `FaultySensorBank` must be
/// observationally identical to the bare `SensorBank` it wraps —
/// checked through `&dyn SensorInterface` so the trait-object path the
/// balancer actually uses is what's covered.
#[test]
fn empty_plan_bank_reads_are_bit_identical() {
    let platform = Platform::quad_heterogeneous();
    let mut plain = SensorBank::new(&platform);
    let mut faulty = FaultySensorBank::new(&platform, FaultPlan::new(), 0xFA17);

    // Identical record streams into both banks.
    for epoch in 0..8u64 {
        for core in 0..4usize {
            let i = epoch * 4 + core as u64;
            let energy = 1e-3 + i as f64 * 1e-5;
            plain.record(CoreId(core), sample(i), energy, 6_000_000);
            faulty.record(CoreId(core), sample(i), energy, 6_000_000);
        }
        faulty.advance_epoch(epoch);
    }

    let a: &dyn SensorInterface = &plain;
    let b: &dyn SensorInterface = &faulty;
    for core in (0..4).map(CoreId) {
        let (ca, cb) = (a.counters(core), b.counters(core));
        assert_eq!(
            serde_json::to_string(&ca).unwrap(),
            serde_json::to_string(&cb).unwrap(),
            "counters diverged on {core:?}"
        );
        assert_eq!(
            a.energy_j(core).to_bits(),
            b.energy_j(core).to_bits(),
            "energy diverged on {core:?}"
        );
        assert_eq!(a.elapsed_ns(core), b.elapsed_ns(core));
    }
}

/// Fingerprints of a closed-loop SmartBalance run, optionally with a
/// fault harness installed.
fn run_closed_loop(plan: Option<FaultPlan>, epochs: u64) -> (Vec<String>, u64, u64) {
    let platform = Platform::quad_heterogeneous();
    let config = SmartBalanceConfig {
        train_corpus: 80,
        ..SmartBalanceConfig::default()
    };
    let mut policy = SmartBalance::with_config(&platform, config);
    let mut sys = System::new(platform, SystemConfig::default());
    if let Some(p) = plan {
        sys.set_fault_plan(p, 0xFA17_2026);
    }
    let mut gen = SyntheticGenerator::new(0xFA57);
    for i in 0..8 {
        sys.spawn(gen.profile(format!("f{i}"), 4, u64::MAX / 64, i % 2 == 0));
    }
    let mut fingerprints = Vec::new();
    for _ in 0..epochs {
        let report = sys.run_epoch(&mut policy);
        fingerprints.push(serde_json::to_string(&report).unwrap());
    }
    (
        fingerprints,
        sys.sensors().total_instructions(),
        sys.sensors().total_energy_j().to_bits(),
    )
}

/// The no-harness path and an installed-but-empty harness must produce
/// bit-identical `EpochReport` streams end to end (acceptance criterion
/// and satellite (c) at the closed-loop level).
#[test]
fn empty_plan_closed_loop_is_bit_identical() {
    let (without, instr_a, energy_a) = run_closed_loop(None, 10);
    let (with_empty, instr_b, energy_b) = run_closed_loop(Some(FaultPlan::new()), 10);
    for (epoch, (a, b)) in without.iter().zip(with_empty.iter()).enumerate() {
        assert_eq!(a, b, "EpochReport for epoch {epoch} diverged");
    }
    assert_eq!(instr_a, instr_b);
    assert_eq!(energy_a, energy_b, "energy must match to the last bit");
}

/// A non-empty plan must actually change the reports (the parity test
/// above must not be passing vacuously).
#[test]
fn injected_faults_change_the_reports() {
    let (clean, ..) = run_closed_loop(None, 10);
    let (faulty, ..) = run_closed_loop(
        Some(FaultPlan::new().inject(2, None, FaultKind::StuckCounters { prob: 1.0 })),
        10,
    );
    assert_eq!(clean[..2], faulty[..2], "identical before injection");
    assert_ne!(clean[2..], faulty[2..], "stuck counters must be visible");
}

/// Hotplug mid-run: the balancer keeps running, migrations toward the
/// dead core are rejected (never silently applied), and no live task is
/// ever reported on the offline core while it is down.
#[test]
fn hotplug_mid_run_never_places_tasks_on_offline_core() {
    let platform = Platform::quad_heterogeneous();
    let mut policy = SmartBalance::with_config(
        &platform,
        SmartBalanceConfig {
            train_corpus: 80,
            ..SmartBalanceConfig::default()
        },
    );
    let mut sys = System::new(platform, SystemConfig::default());
    let mut gen = SyntheticGenerator::new(0x4071);
    for i in 0..10 {
        sys.spawn(gen.profile(format!("h{i}"), 4, u64::MAX / 64, i % 2 == 0));
    }
    let victim = CoreId(1);
    for epoch in 0..24u64 {
        if epoch == 6 {
            sys.set_core_online(victim, false);
        }
        if epoch == 18 {
            sys.set_core_online(victim, true);
        }
        let report = sys.run_epoch(&mut policy);
        if (6..18).contains(&epoch) {
            assert!(!sys.core_online(victim));
            for t in report.tasks.iter().filter(|t| t.alive) {
                assert_ne!(
                    t.core, victim,
                    "epoch {epoch}: live task {:?} on offline core",
                    t.task
                );
            }
            if let Some(applied) = sys.last_applied() {
                for &(task, to, reason) in &applied.rejected {
                    if reason == MigrationReject::OfflineCore {
                        assert_eq!(to, victim, "only the dead core rejects ({task:?})");
                    }
                }
            }
        }
    }
    // The core came back: it must be usable again.
    assert!(sys.core_online(victim));
}

/// Certain migration failure: every accepted move rolls a transient
/// failure, nothing migrates, and the system keeps making progress.
#[test]
fn certain_migration_failure_degrades_to_no_migrations() {
    let platform = Platform::quad_heterogeneous();
    let mut sys = System::new(platform, SystemConfig::default());
    sys.set_migration_failure(1.0, 0xBAD);
    let mut gen = SyntheticGenerator::new(0x517);
    for i in 0..6 {
        let p = gen.profile(format!("m{i}"), 3, u64::MAX / 64, false);
        sys.spawn_on(p, CoreId(0)); // stack everything on one core
    }
    let mut vb = VanillaBalancer::new();
    let mut transient = 0usize;
    for _ in 0..6 {
        sys.run_epoch(&mut vb);
        if let Some(applied) = sys.last_applied() {
            transient += applied.rejected_with(MigrationReject::TransientFailure);
            assert!(applied.migrated.is_empty(), "no move may survive prob 1.0");
        }
    }
    assert!(transient > 0, "the balancer must have attempted moves");
    assert_eq!(sys.stats().migrations, 0);
    assert!(sys.sensors().total_instructions() > 0, "work continued");
}

/// The sharded balancer against a whole-cluster catastrophe: cluster 1
/// first goes sensing-blind (every sample dropped, so its threads fall
/// back to cache replay and then the neutral prior), then is hotplugged
/// out entirely. The per-cluster shards and the global exchange stage
/// must keep running, never place a live thread on the dead cluster,
/// and never even *request* a migration onto it; when the cluster heals
/// and comes back, the shards must pick it up again.
#[test]
fn sharded_balancer_survives_whole_cluster_blackout_and_hotplug() {
    let platform = Platform::clustered_heterogeneous(4, 4);
    let cluster1: Vec<usize> = (4..8).collect();
    let cfg = SmartBalanceConfig {
        train_corpus: 80,
        shard: Some(ShardConfig::default()),
        ..SmartBalanceConfig::default()
    };
    let mut policy = Policy::Smart.build(&platform, Some(&cfg));
    assert_eq!(policy.name(), "smartbalance-sharded");

    let mut sys = System::new(platform, SystemConfig::default());
    // Blackout: from epoch 4 every sample on cluster 1 is lost in
    // transit, well before the hotplug at epoch 10 — the shards see the
    // cluster rot before it disappears.
    let mut plan = FaultPlan::new();
    for &c in &cluster1 {
        plan = plan.inject(4, Some(c), FaultKind::DroppedSamples { prob: 1.0 });
        plan = plan.clear(22, Some(c), FaultClass::Drop);
    }
    sys.set_fault_plan(plan, 0xB1AC_0007);

    let mut gen = SyntheticGenerator::new(0xC1A5);
    for i in 0..20 {
        sys.spawn(gen.profile(format!("c{i}"), 4, u64::MAX / 64, i % 2 == 0));
    }

    for epoch in 0..30u64 {
        if epoch == 10 {
            for &c in &cluster1 {
                sys.set_core_online(CoreId(c), false);
            }
        }
        if epoch == 22 {
            for &c in &cluster1 {
                sys.set_core_online(CoreId(c), true);
            }
        }
        let report = sys.run_epoch(policy.as_mut());
        if (10..22).contains(&epoch) {
            for t in report.tasks.iter().filter(|t| t.alive) {
                assert!(
                    !cluster1.contains(&t.core.0),
                    "epoch {epoch}: live task {:?} on blacked-out offline cluster core {}",
                    t.task,
                    t.core.0
                );
            }
        }
    }
    // The shards must respect the hotplug mask up front: not one
    // migration request toward the dead cluster, ever.
    let stats = sys.stats();
    assert_eq!(
        stats.migration_totals.offline_core, 0,
        "sharded balancer requested migrations onto offline cores"
    );
    assert!(
        sys.sensors().total_instructions() > 0,
        "work continued through the blackout"
    );
    // Healed and back online: the revived cluster is usable again.
    let revived = sys.tasks().iter().any(|t| cluster1.contains(&t.core().0));
    assert!(
        revived || sys.tasks().is_empty(),
        "no thread ever returned to the revived cluster"
    );
}

/// The issue's acceptance scenario: 20 % stuck counters on every core,
/// a total sensing-blackout burst, and one core hotplugged out and back
/// mid-run. The balancer must never panic, walk the degradation ladder
/// with hysteresis (down once the signature cache goes stale during the
/// blackout, back to `Full` after healing), and retain ≥ 70 % of the
/// fault-free energy efficiency.
#[test]
fn acceptance_chaos_scenario_retains_efficiency() {
    fn run(faulty: bool) -> (f64, SmartBalance) {
        let platform = Platform::quad_heterogeneous();
        let mut policy = SmartBalance::with_config(
            &platform,
            SmartBalanceConfig {
                train_corpus: 150,
                // Short signature TTL so the blackout burst exhausts
                // the replay cache within the test's horizon, and a
                // fast promotion window so the climb back fits it too.
                degrade: DegradeConfig {
                    signature_ttl_epochs: 4,
                    promote_after: 2,
                    ..DegradeConfig::default()
                },
                ..SmartBalanceConfig::default()
            },
        );
        let mut sys = System::new(platform, SystemConfig::default());
        if faulty {
            sys.set_fault_plan(
                FaultPlan::new()
                    .inject(0, None, FaultKind::StuckCounters { prob: 0.2 })
                    .inject(8, None, FaultKind::DroppedSamples { prob: 1.0 })
                    .clear(14, None, FaultClass::Drop)
                    .clear(28, None, FaultClass::Stuck),
                0xACC_2026,
            );
        }
        let mut gen = SyntheticGenerator::new(0xACC);
        for i in 0..12 {
            sys.spawn(gen.profile(format!("a{i}"), 4, u64::MAX / 64, i % 2 == 0));
        }
        for epoch in 0..40u64 {
            if faulty {
                if epoch == 18 {
                    sys.set_core_online(CoreId(3), false);
                }
                if epoch == 30 {
                    sys.set_core_online(CoreId(3), true);
                }
            }
            let report = sys.run_epoch(&mut policy);
            if faulty && (18..30).contains(&epoch) {
                assert!(
                    report.tasks.iter().all(|t| !t.alive || t.core != CoreId(3)),
                    "epoch {epoch}: live task on the hotplugged-out core"
                );
            }
        }
        let eff = sys.sensors().total_instructions() as f64 / sys.sensors().total_energy_j();
        (eff, policy)
    }

    let (clean_eff, _) = run(false);
    let (faulty_eff, policy) = run(true);

    let retained = faulty_eff / clean_eff;
    assert!(
        retained >= 0.7,
        "retained only {retained:.3} of fault-free IPS/Watt"
    );
    assert!(
        policy.mode_transitions() >= 2,
        "the drop spike must walk the ladder down and back: {} transitions",
        policy.mode_transitions()
    );
    assert_eq!(
        policy.mode(),
        DegradeMode::Full,
        "healed sensing must recover the full loop"
    );
}
