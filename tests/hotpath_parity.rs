//! Parity tests for the memoized slice-execution engine: estimate
//! caching, phase cursors and the wake-event heap are *performance*
//! changes, so a cached run must be observationally indistinguishable —
//! bit-for-bit — from an uncached run of the same scenario, including
//! across mid-epoch DVFS transitions and forced cross-type migrations.
//!
//! The fingerprint is the JSON serialization of every [`EpochReport`]:
//! string equality of serde_json output implies bit equality of every
//! `f64` inside (shortest-roundtrip formatting), which is a far
//! stronger bar than approximate equality of summary statistics.

use archsim::{CoreId, CoreTypeId, Platform};
use kernelsim::{Allocation, EpochReport, LoadBalancer, System, SystemConfig, TaskId};
use workloads::SyntheticGenerator;

/// Deterministic stirring balancer: rotates every task one core to the
/// right each epoch. Guarantees cross-type migrations every epoch on
/// the quad heterogeneous platform (every core is its own type) and
/// regularly migrates *sleeping* tasks, exercising the wake-heap
/// re-registration path in `apply_allocation`.
struct Rotate {
    num_cores: usize,
    num_tasks: usize,
    epoch: usize,
}

impl LoadBalancer for Rotate {
    fn name(&self) -> &str {
        "rotate"
    }

    fn rebalance(&mut self, _platform: &Platform, _report: &EpochReport) -> Option<Allocation> {
        self.epoch += 1;
        let mut alloc = Allocation::new();
        for t in 0..self.num_tasks {
            alloc.assign(TaskId(t), CoreId((t + self.epoch) % self.num_cores));
        }
        Some(alloc)
    }
}

/// Everything observable about one run of the scenario.
struct RunTrace {
    /// serde_json fingerprint of every epoch's report, in order.
    fingerprints: Vec<String>,
    total_instructions: u64,
    total_energy_bits: u64,
    total_slices: u64,
    cache_hits: u64,
    cache_misses: u64,
}

const TASKS: usize = 10;
const EPOCHS: u32 = 16;

/// Runs the reference parity scenario: 10 multi-phase tasks (half
/// interactive) on the quad heterogeneous platform, stirred by
/// [`Rotate`], with two mid-epoch DVFS transitions when `dvfs` is set.
fn run(cached: bool, dvfs: bool) -> RunTrace {
    let platform = Platform::quad_heterogeneous();
    let mut sys = System::new(platform, SystemConfig::default());
    sys.set_estimate_caching(cached);
    let mut gen = SyntheticGenerator::new(0xD1CE);
    for i in 0..TASKS {
        sys.spawn(gen.profile(format!("w{i}"), 5, u64::MAX / 64, i % 2 == 0));
    }
    let mut bal = Rotate {
        num_cores: 4,
        num_tasks: TASKS,
        epoch: 0,
    };
    let mut fingerprints = Vec::new();
    for epoch in 0..EPOCHS {
        // Mid-epoch DVFS: run one period of the epoch, then retune a
        // core type while its cached estimates are hot.
        if dvfs && epoch == 4 {
            sys.run_period();
            sys.set_operating_point(CoreTypeId(1), 1.0e9, 0.72);
        }
        if dvfs && epoch == 9 {
            sys.run_period();
            sys.set_operating_point(CoreTypeId(1), 1.9e9, 0.9);
            sys.set_operating_point(CoreTypeId(3), 0.4e9, 0.55);
        }
        let report = sys.run_epoch(&mut bal);
        fingerprints.push(serde_json::to_string(&report).expect("serialize report"));
    }
    RunTrace {
        fingerprints,
        total_instructions: sys.sensors().total_instructions(),
        total_energy_bits: sys.sensors().total_energy_j().to_bits(),
        total_slices: sys.total_slices(),
        cache_hits: sys.estimate_cache().hits(),
        cache_misses: sys.estimate_cache().misses(),
    }
}

#[test]
fn cached_and_uncached_streams_are_bit_identical() {
    let cached = run(true, true);
    let uncached = run(false, true);

    for (epoch, (a, b)) in cached
        .fingerprints
        .iter()
        .zip(uncached.fingerprints.iter())
        .enumerate()
    {
        assert_eq!(a, b, "EpochReport for epoch {epoch} diverged");
    }
    assert_eq!(cached.total_instructions, uncached.total_instructions);
    assert_eq!(
        cached.total_energy_bits, uncached.total_energy_bits,
        "energy accounting must match to the last bit"
    );
    assert_eq!(cached.total_slices, uncached.total_slices);

    // The parity must not be vacuous: the cached run has to have
    // actually served most dispatches from the cache, and the uncached
    // run must never have populated it.
    assert!(
        cached.cache_hits > 4 * cached.cache_misses,
        "cache barely used: {} hits / {} misses",
        cached.cache_hits,
        cached.cache_misses
    );
    assert_eq!(uncached.cache_hits, 0);
    assert_eq!(
        cached.cache_hits + cached.cache_misses,
        cached.total_slices,
        "every dispatched slice consults the cache exactly once"
    );
}

#[test]
fn dvfs_transitions_change_execution_through_the_cache() {
    // Guard against the parity test passing trivially because the DVFS
    // knob is a no-op: with transitions enabled the cached run must
    // diverge from a transition-free run after the first retune.
    let with_dvfs = run(true, true);
    let without = run(true, false);
    assert_eq!(
        with_dvfs.fingerprints[..4],
        without.fingerprints[..4],
        "identical before the first transition"
    );
    assert_ne!(
        with_dvfs.fingerprints[5..],
        without.fingerprints[5..],
        "DVFS retune at epoch 4 must alter subsequent epochs"
    );
    assert_ne!(with_dvfs.total_instructions, without.total_instructions);
}
