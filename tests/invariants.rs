//! Cross-crate invariants: the DESIGN.md invariant list, exercised
//! over 64 deterministic pseudo-random cases per property (seeded
//! `SyntheticGenerator` sweeps stand in for proptest, which is
//! unavailable in the offline build environment).

use archsim::{run_slice, CoreConfig, CoreId, CoreTypeId, Platform, WorkloadCharacteristics};
use kernelsim::{NullBalancer, System, SystemConfig, TaskId};
use smartbalance::fixed::{fx_exp_neg, Fx, Randi};
use smartbalance::{anneal, AnnealParams, CharacterizationMatrices, Goal, Objective};
use workloads::{SyntheticGenerator, WorkloadProfile};

/// Cases per property — matches the proptest case count this harness
/// replaced.
const CASES: u64 = 64;

/// A generator seeded per (property, case) so properties are
/// independent and every run is identical.
fn case_gen(property: u64, case: u64) -> SyntheticGenerator {
    SyntheticGenerator::new((property << 32) ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1)
}

fn gen_characteristics(gen: &mut SyntheticGenerator) -> WorkloadCharacteristics {
    WorkloadCharacteristics {
        ilp: gen.range(0.5, 8.0),
        mem_share: gen.range(0.0, 0.6),
        branch_share: gen.range(0.0, 0.35),
        data_working_set_kib: gen.range(1.0, 8192.0),
        code_working_set_kib: gen.range(1.0, 512.0),
        branch_entropy: gen.range(0.0, 1.0),
        data_pages: gen.range(1.0, 10_000.0),
        code_pages: gen.range(1.0, 1_000.0),
        mlp: gen.range(1.0, 8.0),
    }
    .clamped()
}

fn gen_core(gen: &mut SyntheticGenerator) -> CoreConfig {
    match gen.below(6) {
        0 => CoreConfig::huge(),
        1 => CoreConfig::big(),
        2 => CoreConfig::medium(),
        3 => CoreConfig::small(),
        4 => CoreConfig::a15_like(),
        _ => CoreConfig::a7_like(),
    }
}

#[test]
fn key_types_serde_roundtrip() {
    // The library's data types are serializable (C-SERDE); verify the
    // roundtrips actually preserve the values users would persist.
    let platform = Platform::quad_heterogeneous();
    let json = serde_json::to_string(&platform).expect("serialize platform");
    let back: Platform = serde_json::from_str(&json).expect("deserialize platform");
    assert_eq!(back, platform);

    let w = WorkloadCharacteristics::memory_bound();
    let back: WorkloadCharacteristics =
        serde_json::from_str(&serde_json::to_string(&w).expect("ser")).expect("de");
    assert_eq!(back, w);

    let profile = workloads::parsec::bodytrack();
    let back: WorkloadProfile =
        serde_json::from_str(&serde_json::to_string(&profile).expect("ser")).expect("de");
    assert_eq!(back, profile);

    let params = AnnealParams::scaled_for(8, 16);
    let back: AnnealParams =
        serde_json::from_str(&serde_json::to_string(&params).expect("ser")).expect("de");
    // JSON float text rounds the last ULP; compare with tolerance.
    assert_eq!(back.max_iter, params.max_iter);
    assert!((back.dperturb - params.dperturb).abs() < 1e-12);
    assert!((back.daccept - params.daccept).abs() < 1e-12);

    let predictors = smartbalance::PredictorSet::train(&platform, 20, 1);
    let back: smartbalance::PredictorSet =
        serde_json::from_str(&serde_json::to_string(&predictors).expect("ser")).expect("de");
    // Float text rounds ULPs; check structure and behaviour instead.
    assert_eq!(back.num_types(), predictors.num_types());
    assert_eq!(back.is_sparse(), predictors.is_sparse());
    let feats = [1.5, 0.01, 0.05, 0.3, 0.15, 0.05, 1e-3, 5e-3, 1.0, 1.0, 0.05];
    for s in 0..4 {
        for d in 0..4 {
            let a = predictors.predict_ipc(&feats, CoreTypeId(s), CoreTypeId(d));
            let b = back.predict_ipc(&feats, CoreTypeId(s), CoreTypeId(d));
            assert!((a - b).abs() < 1e-9, "{s}->{d}: {a} vs {b}");
        }
    }
}

/// archsim: IPC is positive, bounded by peak, and counters are
/// internally consistent for any workload × core × duration.
#[test]
fn slice_counters_always_consistent() {
    for case in 0..CASES {
        let mut gen = case_gen(1, case);
        let w = gen_characteristics(&mut gen);
        let core = gen_core(&mut gen);
        let dur = 1_000 + gen.below(100_000_000 - 1_000);
        let s = run_slice(&w, &core, dur);
        assert!(
            s.ipc > 0.0 && s.ipc <= core.peak_ipc * 1.001,
            "case {case}: ipc {} vs peak {}",
            s.ipc,
            core.peak_ipc
        );
        assert!((0.0..=1.0).contains(&s.activity), "case {case}");
        let c = &s.counters;
        assert!(c.l1d_misses <= c.l1d_accesses, "case {case}");
        assert!(c.l1i_misses <= c.l1i_accesses, "case {case}");
        assert!(c.branch_mispredicts <= c.branch_instructions, "case {case}");
        assert!(c.itlb_misses <= c.itlb_accesses, "case {case}");
        assert!(c.dtlb_misses <= c.dtlb_accesses, "case {case}");
        assert!(c.mem_instructions <= c.instructions, "case {case}");
        assert!(c.branch_instructions <= c.instructions, "case {case}");
        assert!(c.cy_mem_stall <= c.cy_idle, "case {case}");
    }
}

/// mcpat: power is monotone in activity and bounded by the calibrated
/// peak for every core type.
#[test]
fn power_monotone_and_bounded() {
    for case in 0..CASES {
        let mut gen = case_gen(2, case);
        let core = gen_core(&mut gen);
        let a = gen.range(0.0, 1.0);
        let b = gen.range(0.0, 1.0);
        let model = mcpat::CorePowerModel::calibrated(&core);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(
            model.active_power_w(lo) <= model.active_power_w(hi) + 1e-12,
            "case {case}"
        );
        assert!(
            model.active_power_w(hi) <= core.peak_power_w * 1.000001,
            "case {case}"
        );
        assert!(
            model.power_w(mcpat::PowerState::Sleeping) < model.active_power_w(0.0),
            "case {case}"
        );
    }
}

/// fixed point: e^-x stays within tolerance of the float result.
#[test]
fn fx_exp_matches_float() {
    for case in 0..CASES {
        let mut gen = case_gen(3, case);
        let x = gen.range(0.0, 11.0);
        let got = fx_exp_neg(Fx::from_f64(x)).to_f64();
        let want = (-x).exp();
        assert!(
            (got - want).abs() < 0.01 * want.max(0.05),
            "case {case}: exp(-{x}) = {want}, fx gave {got}"
        );
    }
}

/// fixed point: randi_range never leaves its interval.
#[test]
fn randi_range_in_bounds() {
    for case in 0..CASES {
        let mut gen = case_gen(4, case);
        let seed = gen.below(1 << 32) as u32;
        let lo = gen.below(200) as i64 - 100;
        let span = 1 + gen.below(999) as i64;
        let mut r = Randi::new(seed);
        for _ in 0..100 {
            let v = r.randi_range(lo, lo + span);
            assert!(
                v >= lo && v < lo + span,
                "case {case}: {v} ∉ [{lo}, {})",
                lo + span
            );
        }
    }
}

/// annealer: for any random matrices and initial allocation, the
/// result is a valid allocation no worse than the initial one.
#[test]
fn anneal_valid_and_never_worse() {
    for case in 0..CASES {
        let mut gen = case_gen(5, case);
        let seed = gen.below(1 << 32) as u32;
        let n = 2 + gen.below(6) as usize;
        let m = 1 + gen.below(11) as usize;
        let mut mat = CharacterizationMatrices::new(
            (0..m).map(TaskId).collect(),
            (0..n).map(CoreTypeId).collect(),
            vec![0.01; n],
        );
        for i in 0..m {
            for j in 0..n {
                mat.set(i, j, gen.range(0.05e9, 4.0e9), gen.range(0.05, 9.0), false);
            }
            mat.set_utilization(i, gen.range(0.05, 1.0));
        }
        let initial: Vec<usize> = (0..m).map(|i| i % n).collect();
        let objective = Objective::new(&mat, Goal::EnergyEfficiency);
        let out = anneal(&objective, &initial, AnnealParams::cooled(150), seed);
        assert_eq!(out.allocation.len(), m, "case {case}");
        for &c in &out.allocation {
            assert!(c < n, "case {case}");
        }
        assert!(
            out.objective >= out.initial_objective - 1e-12,
            "case {case}"
        );
        // And the reported objective matches a fresh evaluation.
        let fresh = objective.evaluate(&out.allocation);
        assert!((fresh - out.objective).abs() < 1e-9, "case {case}");
    }
}

/// kernelsim: total instructions across tasks equal total across
/// cores, for random task sets.
#[test]
fn task_and_core_ledgers_agree() {
    for case in 0..CASES {
        let mut gen = case_gen(6, case);
        let tasks = 1 + gen.below(9) as usize;
        let platform = Platform::quad_heterogeneous();
        let mut sys = System::new(platform, SystemConfig::default());
        for i in 0..tasks {
            let interactive = gen.below(2) == 0;
            sys.spawn(gen.profile(format!("t{i}"), 3, 200_000_000, interactive));
        }
        let mut nb = NullBalancer;
        let report = sys.run_epoch(&mut nb);
        let task_instr: u64 = report.tasks.iter().map(|t| t.counters.instructions).sum();
        let core_instr: u64 = report.cores.iter().map(|c| c.counters.instructions).sum();
        assert_eq!(task_instr, core_instr, "case {case}");
        let task_energy: f64 = report.tasks.iter().map(|t| t.energy_j).sum();
        let core_energy: f64 = report.cores.iter().map(|c| c.energy_j).sum();
        // Core energy additionally includes sleep energy.
        assert!(core_energy >= task_energy - 1e-12, "case {case}");
    }
}

/// kernelsim: migration preserves tasks (none lost or duplicated) for
/// random allocations.
#[test]
fn migration_preserves_tasks() {
    for case in 0..CASES {
        let mut gen = case_gen(7, case);
        let moves = 1 + gen.below(19) as usize;
        let platform = Platform::quad_heterogeneous();
        let mut sys = System::new(platform, SystemConfig::default());
        let ids: Vec<TaskId> = (0..6)
            .map(|i| {
                sys.spawn(WorkloadProfile::uniform(
                    format!("t{i}"),
                    WorkloadCharacteristics::balanced(),
                    u64::MAX / 8,
                ))
            })
            .collect();
        for _ in 0..moves {
            let mut alloc = kernelsim::Allocation::new();
            for &id in &ids {
                alloc.assign(id, CoreId(gen.below(4) as usize));
            }
            sys.apply_allocation(&alloc);
            sys.run_period();
        }
        // Every task exists exactly once and sits on a valid core.
        assert_eq!(sys.tasks().len(), 6, "case {case}");
        for t in sys.tasks() {
            assert!(t.core().0 < 4, "case {case}");
        }
        let mut nb = NullBalancer;
        let report = sys.run_epoch(&mut nb);
        assert_eq!(report.tasks.len(), 6, "case {case}");
    }
}
