//! Property-based cross-crate invariants (proptest): the DESIGN.md
//! invariant list, exercised with randomized workloads, platforms and
//! allocations.

use archsim::{run_slice, CoreConfig, CoreId, CoreTypeId, Platform, WorkloadCharacteristics};
use kernelsim::{NullBalancer, System, SystemConfig, TaskId};
use proptest::prelude::*;
use smartbalance::fixed::{fx_exp_neg, Fx, Randi};
use smartbalance::{anneal, AnnealParams, CharacterizationMatrices, Goal, Objective};
use workloads::WorkloadProfile;

#[test]
fn key_types_serde_roundtrip() {
    // The library's data types are serializable (C-SERDE); verify the
    // roundtrips actually preserve the values users would persist.
    let platform = Platform::quad_heterogeneous();
    let json = serde_json::to_string(&platform).expect("serialize platform");
    let back: Platform = serde_json::from_str(&json).expect("deserialize platform");
    assert_eq!(back, platform);

    let w = WorkloadCharacteristics::memory_bound();
    let back: WorkloadCharacteristics =
        serde_json::from_str(&serde_json::to_string(&w).expect("ser")).expect("de");
    assert_eq!(back, w);

    let profile = workloads::parsec::bodytrack();
    let back: WorkloadProfile =
        serde_json::from_str(&serde_json::to_string(&profile).expect("ser")).expect("de");
    assert_eq!(back, profile);

    let params = AnnealParams::scaled_for(8, 16);
    let back: AnnealParams =
        serde_json::from_str(&serde_json::to_string(&params).expect("ser")).expect("de");
    // JSON float text rounds the last ULP; compare with tolerance.
    assert_eq!(back.max_iter, params.max_iter);
    assert!((back.dperturb - params.dperturb).abs() < 1e-12);
    assert!((back.daccept - params.daccept).abs() < 1e-12);

    let predictors = smartbalance::PredictorSet::train(&platform, 20, 1);
    let back: smartbalance::PredictorSet =
        serde_json::from_str(&serde_json::to_string(&predictors).expect("ser")).expect("de");
    // Float text rounds ULPs; check structure and behaviour instead.
    assert_eq!(back.num_types(), predictors.num_types());
    assert_eq!(back.is_sparse(), predictors.is_sparse());
    let feats = [1.5, 0.01, 0.05, 0.3, 0.15, 0.05, 1e-3, 5e-3, 1.0, 1.0, 0.05];
    for s in 0..4 {
        for d in 0..4 {
            let a = predictors.predict_ipc(&feats, CoreTypeId(s), CoreTypeId(d));
            let b = back.predict_ipc(&feats, CoreTypeId(s), CoreTypeId(d));
            assert!((a - b).abs() < 1e-9, "{s}->{d}: {a} vs {b}");
        }
    }
}

fn arb_characteristics() -> impl Strategy<Value = WorkloadCharacteristics> {
    (
        0.5f64..8.0,
        0.0f64..0.6,
        0.0f64..0.35,
        1.0f64..8192.0,
        1.0f64..512.0,
        0.0f64..1.0,
        1.0f64..10_000.0,
        1.0f64..1_000.0,
        1.0f64..8.0,
    )
        .prop_map(
            |(ilp, mem, br, dws, cws, ent, dp, cp, mlp)| {
                WorkloadCharacteristics {
                    ilp,
                    mem_share: mem,
                    branch_share: br,
                    data_working_set_kib: dws,
                    code_working_set_kib: cws,
                    branch_entropy: ent,
                    data_pages: dp,
                    code_pages: cp,
                    mlp,
                }
                .clamped()
            },
        )
}

fn arb_core() -> impl Strategy<Value = CoreConfig> {
    prop_oneof![
        Just(CoreConfig::huge()),
        Just(CoreConfig::big()),
        Just(CoreConfig::medium()),
        Just(CoreConfig::small()),
        Just(CoreConfig::a15_like()),
        Just(CoreConfig::a7_like()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// archsim: IPC is positive, bounded by peak, and counters are
    /// internally consistent for any workload × core × duration.
    #[test]
    fn slice_counters_always_consistent(
        w in arb_characteristics(),
        core in arb_core(),
        dur in 1_000u64..100_000_000,
    ) {
        let s = run_slice(&w, &core, dur);
        prop_assert!(s.ipc > 0.0 && s.ipc <= core.peak_ipc * 1.001);
        prop_assert!(s.activity >= 0.0 && s.activity <= 1.0);
        let c = &s.counters;
        prop_assert!(c.l1d_misses <= c.l1d_accesses);
        prop_assert!(c.l1i_misses <= c.l1i_accesses);
        prop_assert!(c.branch_mispredicts <= c.branch_instructions);
        prop_assert!(c.itlb_misses <= c.itlb_accesses);
        prop_assert!(c.dtlb_misses <= c.dtlb_accesses);
        prop_assert!(c.mem_instructions <= c.instructions);
        prop_assert!(c.branch_instructions <= c.instructions);
        prop_assert!(c.cy_mem_stall <= c.cy_idle);
    }

    /// mcpat: power is monotone in activity and bounded by the
    /// calibrated peak for every core type.
    #[test]
    fn power_monotone_and_bounded(core in arb_core(), a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let model = mcpat::CorePowerModel::calibrated(&core);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(model.active_power_w(lo) <= model.active_power_w(hi) + 1e-12);
        prop_assert!(model.active_power_w(hi) <= core.peak_power_w * 1.000001);
        prop_assert!(model.power_w(mcpat::PowerState::Sleeping) < model.active_power_w(0.0));
    }

    /// fixed point: e^-x stays within tolerance of the float result.
    #[test]
    fn fx_exp_matches_float(x in 0.0f64..11.0) {
        let got = fx_exp_neg(Fx::from_f64(x)).to_f64();
        let want = (-x).exp();
        prop_assert!((got - want).abs() < 0.01 * want.max(0.05));
    }

    /// fixed point: randi_range never leaves its interval.
    #[test]
    fn randi_range_in_bounds(seed in any::<u32>(), lo in -100i64..100, span in 1i64..1000) {
        let mut r = Randi::new(seed);
        for _ in 0..100 {
            let v = r.randi_range(lo, lo + span);
            prop_assert!(v >= lo && v < lo + span);
        }
    }

    /// annealer: for any random matrices and initial allocation, the
    /// result is a valid allocation no worse than the initial one.
    #[test]
    fn anneal_valid_and_never_worse(
        seed in any::<u32>(),
        n in 2usize..8,
        m in 1usize..12,
    ) {
        let mut gen = workloads::SyntheticGenerator::new(u64::from(seed) | 1);
        let mut mat = CharacterizationMatrices::new(
            (0..m).map(TaskId).collect(),
            (0..n).map(CoreTypeId).collect(),
            vec![0.01; n],
        );
        for i in 0..m {
            for j in 0..n {
                mat.set(i, j, gen.range(0.05e9, 4.0e9), gen.range(0.05, 9.0), false);
            }
            mat.set_utilization(i, gen.range(0.05, 1.0));
        }
        let initial: Vec<usize> = (0..m).map(|i| i % n).collect();
        let objective = Objective::new(&mat, Goal::EnergyEfficiency);
        let out = anneal(&objective, &initial, AnnealParams::cooled(150), seed);
        prop_assert_eq!(out.allocation.len(), m);
        for &c in &out.allocation {
            prop_assert!(c < n);
        }
        prop_assert!(out.objective >= out.initial_objective - 1e-12);
        // And the reported objective matches a fresh evaluation.
        let fresh = objective.evaluate(&out.allocation);
        prop_assert!((fresh - out.objective).abs() < 1e-9);
    }

    /// kernelsim: total instructions across tasks equal total across
    /// cores, for random task sets.
    #[test]
    fn task_and_core_ledgers_agree(
        seed in any::<u64>(),
        tasks in 1usize..10,
    ) {
        let platform = Platform::quad_heterogeneous();
        let mut sys = System::new(platform, SystemConfig::default());
        let mut gen = workloads::SyntheticGenerator::new(seed | 1);
        for i in 0..tasks {
            let interactive = gen.below(2) == 0;
            sys.spawn(gen.profile(format!("t{i}"), 3, 200_000_000, interactive));
        }
        let mut nb = NullBalancer;
        let report = sys.run_epoch(&mut nb);
        let task_instr: u64 = report.tasks.iter().map(|t| t.counters.instructions).sum();
        let core_instr: u64 = report.cores.iter().map(|c| c.counters.instructions).sum();
        prop_assert_eq!(task_instr, core_instr);
        let task_energy: f64 = report.tasks.iter().map(|t| t.energy_j).sum();
        let core_energy: f64 = report.cores.iter().map(|c| c.energy_j).sum();
        // Core energy additionally includes sleep energy.
        prop_assert!(core_energy >= task_energy - 1e-12);
    }

    /// kernelsim: migration preserves tasks (none lost or duplicated)
    /// for random allocations.
    #[test]
    fn migration_preserves_tasks(seed in any::<u64>(), moves in 1usize..20) {
        let platform = Platform::quad_heterogeneous();
        let mut sys = System::new(platform, SystemConfig::default());
        let mut gen = workloads::SyntheticGenerator::new(seed | 1);
        let ids: Vec<TaskId> = (0..6)
            .map(|i| {
                sys.spawn(WorkloadProfile::uniform(
                    format!("t{i}"),
                    WorkloadCharacteristics::balanced(),
                    u64::MAX / 8,
                ))
            })
            .collect();
        for _ in 0..moves {
            let mut alloc = kernelsim::Allocation::new();
            for &id in &ids {
                alloc.assign(id, CoreId(gen.below(4) as usize));
            }
            sys.apply_allocation(&alloc);
            let mut nb = NullBalancer;
            sys.run_period();
            let _ = &mut nb;
        }
        // Every task exists exactly once and sits on a valid core.
        prop_assert_eq!(sys.tasks().len(), 6);
        for t in sys.tasks() {
            prop_assert!(t.core().0 < 4);
        }
        let mut nb = NullBalancer;
        let report = sys.run_epoch(&mut nb);
        prop_assert_eq!(report.tasks.len(), 6);
    }
}
