//! Live observability plane acceptance tests: a running campaign
//! serves `/metrics`, `/progress` and `/healthz` concurrently; the
//! `sb_campaign_completed_total` counter only ever climbs; the final
//! scrape agrees with the campaign report; and attaching the endpoint
//! never perturbs a single report byte.
//!
//! The campaign runner holds an `Rc`-based telemetry handle and is
//! deliberately `!Send`, so each test runs its campaign to completion
//! inside a dedicated `std::thread` while the test thread plays the
//! role of the scraper.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use archsim::{Platform, WorkloadCharacteristics};
use campaign::{Campaign, CampaignConfig, CampaignJob, CampaignReport, CheckpointJournal};
use smartbalance::{ExperimentSpec, Policy};
use telemetry::SnapshotCell;
use workloads::WorkloadProfile;

fn tiny_spec(name: &str, instructions: u64) -> ExperimentSpec {
    ExperimentSpec::new(
        name,
        Platform::quad_heterogeneous(),
        vec![
            WorkloadProfile::uniform("t0", WorkloadCharacteristics::balanced(), instructions),
            WorkloadProfile::uniform("t1", WorkloadCharacteristics::compute_bound(), instructions),
        ],
    )
    .with_max_epochs(60)
}

/// A 7-cell grid: three specs under two policies each, plus the
/// canonical poisoned cell (IKS asserts big.LITTLE, panics on the
/// quad) so the scrape surface exercises the quarantine counters too.
fn grid() -> Vec<CampaignJob> {
    let mut jobs = Vec::new();
    for (s, spec_name) in ["alpha", "beta", "gamma"].iter().enumerate() {
        for policy in [Policy::Vanilla, Policy::Smart] {
            let index = jobs.len();
            jobs.push(CampaignJob::new(
                index,
                tiny_spec(spec_name, 400_000 + 100_000 * s as u64),
                policy,
            ));
        }
    }
    let index = jobs.len();
    jobs.push(CampaignJob::new(
        index,
        tiny_spec("poisoned", 400_000),
        Policy::Iks,
    ));
    jobs
}

fn journal_path(test: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("live-endpoint-tests");
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    let path = dir.join(format!("{test}.jsonl"));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(dir.join(format!("{test}.jsonl.tmp")));
    path
}

/// One raw HTTP/1.1 GET over a fresh connection; returns
/// `(status_code, body)`.
fn scrape(addr: std::net::SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("endpoint accepts");
    let request = format!("GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .expect("request writes");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("response reads");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .expect("status line parses");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

/// The value of a plain (unlabeled) counter in a Prometheus page, if
/// the series exists.
fn counter_value(prometheus: &str, name: &str) -> Option<u64> {
    prometheus.lines().find_map(|line| {
        let (key, value) = line.split_once(' ')?;
        (key == name).then(|| value.parse().ok())?
    })
}

/// Runs a campaign over `grid()` to completion on a dedicated thread
/// (the runner is `!Send`), publishing snapshots into `cell`.
fn run_campaign_publishing(
    test: &str,
    cell: Arc<SnapshotCell>,
) -> std::thread::JoinHandle<CampaignReport> {
    let path = journal_path(test);
    std::thread::spawn(move || {
        let journal = CheckpointJournal::load(&path).expect("fresh journal");
        let config = CampaignConfig {
            flush_every: 1,
            ..CampaignConfig::default()
        };
        let mut campaign = Campaign::new(grid(), config, journal);
        campaign.attach_telemetry(telemetry::shared());
        campaign.publish_snapshots(cell);
        campaign.run().expect("journal flushes")
    })
}

#[test]
fn running_campaign_serves_all_three_endpoints_and_completed_only_climbs() {
    let cell = Arc::new(SnapshotCell::fresh());
    let server = obsd::serve(Arc::clone(&cell), "127.0.0.1:0").expect("endpoint binds");
    let addr = server.bound_addr();

    let worker = run_campaign_publishing("serves-while-running", Arc::clone(&cell));

    // Scrape continuously until the campaign thread finishes. Every
    // observed value of sb_campaign_completed_total must be >= the one
    // before it: the endpoint never time-travels.
    let mut observed = Vec::new();
    let mut last = 0u64;
    while !worker.is_finished() {
        let (status, body) = scrape(addr, "/metrics");
        assert_eq!(status, 200);
        if let Some(value) = counter_value(&body, "sb_campaign_completed_total") {
            assert!(
                value >= last,
                "sb_campaign_completed_total went backwards: {observed:?} then {value}"
            );
            last = value;
            observed.push(value);
        }
        let (status, _) = scrape(addr, "/healthz");
        assert_eq!(status, 200);
    }
    let report = worker.join().expect("campaign thread joins");

    // The final snapshot agrees with the report, counter for counter.
    let (status, body) = scrape(addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(
        counter_value(&body, "sb_campaign_completed_total"),
        Some(report.completed.len() as u64),
        "final /metrics matches the report: {body}"
    );
    assert_eq!(
        counter_value(&body, "sb_campaign_quarantined_total"),
        Some(report.poisoned.len() as u64)
    );
    assert_eq!(
        counter_value(&body, "sb_campaign_retried_total"),
        Some(report.retries_total)
    );

    let (status, progress) = scrape(addr, "/progress");
    assert_eq!(status, 200);
    let expected = format!(
        "\"cells_total\":{},\"cells_completed\":{},\"cells_quarantined\":{},\"cells_pending\":0",
        report.cells,
        report.completed.len(),
        report.poisoned.len()
    );
    assert!(
        progress.contains(&expected),
        "final /progress carries the terminal tallies: {progress}"
    );
    assert!(
        progress.contains("\"journal_flushes\":"),
        "flush stats are exported: {progress}"
    );
    assert!(report.is_complete());
    assert!(server.scrape_count() >= 2, "metrics scrapes were counted");
    server.request_shutdown();
}

#[test]
fn endpoint_on_and_off_reports_are_byte_identical() {
    // Reference: the same grid with no live plane attached at all.
    let path = journal_path("endpoint-off");
    let journal = CheckpointJournal::load(&path).expect("fresh journal");
    let mut reference = Campaign::new(grid(), CampaignConfig::default(), journal);
    let reference_report = reference.run().expect("journal flushes");

    let cell = Arc::new(SnapshotCell::fresh());
    let server = obsd::serve(Arc::clone(&cell), "127.0.0.1:0").expect("endpoint binds");
    let addr = server.bound_addr();
    let worker = run_campaign_publishing("endpoint-on", cell);
    while !worker.is_finished() {
        let _ = scrape(addr, "/metrics");
        let _ = scrape(addr, "/progress");
    }
    let observed_report = worker.join().expect("campaign thread joins");
    server.request_shutdown();

    let reference_bytes =
        serde_json::to_string(&reference_report.canonicalized()).expect("report serializes");
    let observed_bytes =
        serde_json::to_string(&observed_report.canonicalized()).expect("report serializes");
    assert_eq!(
        reference_bytes, observed_bytes,
        "scraping a live campaign must not change a single report byte"
    );
}
