//! Scalability integration tests: the full stack on larger platforms
//! (the Fig. 7(b)/Fig. 8 regime) — correctness at scale, not speed.

use archsim::Platform;
use kernelsim::{System, SystemConfig};
use smartbalance::{
    anneal, known_optimum_case, AnnealParams, Goal, Objective, ShardedBalancer, SmartBalance,
};
use workloads::SyntheticGenerator;

#[test]
fn thirty_two_core_platform_runs_end_to_end() {
    let platform = Platform::scaled_heterogeneous(32);
    let mut sys = System::new(platform.clone(), SystemConfig::default());
    let mut gen = SyntheticGenerator::new(99);
    for i in 0..64 {
        sys.spawn(gen.profile(format!("t{i}"), 2, 100_000_000, i % 4 == 0));
    }
    let mut policy = SmartBalance::new(&platform);
    for _ in 0..6 {
        sys.run_epoch(&mut policy);
    }
    // Every live task sits on a valid core; accounting still balances.
    let cores = platform.num_cores();
    for t in sys.tasks() {
        assert!(t.core().0 < cores);
    }
    let stats = sys.stats();
    let per_core: u64 = stats.per_core.iter().map(|c| c.instructions).sum();
    assert_eq!(per_core, stats.total_instructions);
    assert!(stats.total_instructions > 0);
}

#[test]
fn clustered_256_core_platform_runs_end_to_end_sharded() {
    // The hierarchical regime: 8 clusters × 32 cores under the
    // cluster-sharded balancer.
    let platform = Platform::clustered_heterogeneous(8, 32);
    let mut sys = System::new(platform.clone(), SystemConfig::default());
    let mut gen = SyntheticGenerator::new(7);
    for i in 0..384 {
        sys.spawn(gen.profile(format!("t{i}"), 2, 50_000_000, i % 4 == 0));
    }
    let mut policy = ShardedBalancer::new(&platform);
    for _ in 0..5 {
        sys.run_epoch(&mut policy);
    }
    let cores = platform.num_cores();
    assert_eq!(cores, 256);
    for t in sys.tasks() {
        assert!(t.core().0 < cores);
    }
    let stats = sys.stats();
    let per_core: u64 = stats.per_core.iter().map(|c| c.instructions).sum();
    assert_eq!(per_core, stats.total_instructions);
    assert!(stats.total_instructions > 0);
    // The sharded balancer must actually exchange across clusters on a
    // mixed synthetic workload.
    assert!(stats.migrations > 0);
}

#[test]
fn annealer_stays_near_optimal_across_scales() {
    // The Fig. 8(a) measurement as a regression gate: with the scaled
    // iteration budgets, distance to the known optimum stays small.
    for &cores in &[2usize, 8, 32] {
        let threads = cores * 2;
        let case = known_optimum_case(cores, 2, 7 * cores as u64);
        let objective = Objective::new(&case.matrices, Goal::EnergyEfficiency);
        let params = AnnealParams::scaled_for(cores, threads);
        let out = anneal(&objective, &vec![0usize; threads], params, 5);
        let distance = 1.0 - out.objective / case.optimal_value;
        assert!(
            distance < 0.05,
            "{cores} cores: distance to optimal {distance:.3}"
        );
    }
}

#[test]
fn iteration_budget_rule_is_monotone_and_capped() {
    let mut prev = 0;
    for &(n, m) in &[(2usize, 4usize), (4, 8), (8, 16), (32, 64), (128, 256)] {
        let p = AnnealParams::scaled_for(n, m);
        assert!(p.max_iter >= prev, "budget must not shrink with size");
        assert!(p.max_iter <= 4_000, "budget must stay capped");
        prev = p.max_iter;
    }
}

#[test]
fn predictor_training_scales_to_more_core_types() {
    // 6 distinct core types (the aggressive-heterogeneity pitch):
    // training covers all 36 ordered pairs.
    use archsim::{CoreConfig, CoreTypeId};
    let mut types = vec![
        CoreConfig::huge(),
        CoreConfig::big(),
        CoreConfig::medium(),
        CoreConfig::small(),
        CoreConfig::a15_like(),
        CoreConfig::a7_like(),
    ];
    // Make names unique (cosmetic).
    for (i, t) in types.iter_mut().enumerate() {
        t.name = format!("{}_{i}", t.name);
    }
    let gamma = (0..6).map(CoreTypeId).collect();
    let platform = Platform::new(types, gamma);
    let predictors = smartbalance::PredictorSet::train(&platform, 150, 5);
    assert_eq!(predictors.num_types(), 6);
    // Spot-check a cross-type prediction is physical.
    let corpus = SyntheticGenerator::new(1).corpus(20);
    let (err, _) = smartbalance::predict::evaluate_pair(
        &predictors,
        &platform,
        &corpus,
        CoreTypeId(0),
        CoreTypeId(5),
    );
    assert!(err < 0.2, "6-type cross prediction error {err}");
}
