//! Parity and determinism contracts for the hierarchical sharded
//! balancer:
//!
//! * with sharding off, the [`Policy::Smart`] path stays bit-identical
//!   to the flat `SmartBalance` oracle;
//! * with sharding on, the policy dispatch is bit-identical to a
//!   directly-constructed [`ShardedBalancer`];
//! * offline (hotplugged) cores are honored inside every cluster
//!   shard — no placement ever targets them;
//! * shard worker count (1 vs N) never changes results.

use archsim::{CoreId, Platform};
use kernelsim::{EpochReport, LoadBalancer, System, SystemConfig};
use smartbalance::{
    ExperimentSpec, ExperimentSuite, Policy, ShardConfig, ShardedBalancer, SmartBalance,
    SmartBalanceConfig,
};
use workloads::{SyntheticGenerator, WorkloadProfile};

/// Serialized fingerprint of one epoch — string equality implies bit
/// equality of every field the report carries.
fn fingerprint(report: &EpochReport) -> String {
    serde_json::to_string(report).expect("epoch report serializes")
}

fn mixed_profiles(count: usize, seed: u64, budget: u64) -> Vec<WorkloadProfile> {
    let mut gen = SyntheticGenerator::new(seed);
    (0..count)
        .map(|i| gen.profile(format!("t{i}"), 2, budget, i % 3 == 0))
        .collect()
}

fn spawn_all(sys: &mut System, profiles: &[WorkloadProfile]) {
    for p in profiles {
        sys.spawn(p.clone());
    }
}

/// Runs `epochs` epochs of the same workload under `balancer` and
/// returns (per-epoch fingerprints, final-stats fingerprint, energy
/// bits).
fn run_fingerprinted(
    platform: &Platform,
    profiles: &[WorkloadProfile],
    balancer: &mut dyn LoadBalancer,
    epochs: usize,
) -> (Vec<String>, String, u64) {
    let mut sys = System::new(platform.clone(), SystemConfig::default());
    spawn_all(&mut sys, profiles);
    let mut prints = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        prints.push(fingerprint(&sys.run_epoch(balancer)));
    }
    let stats = sys.stats();
    let energy_bits = stats.total_energy_j.to_bits();
    let stats_print = serde_json::to_string(&stats).expect("stats serialize");
    (prints, stats_print, energy_bits)
}

#[test]
fn sharding_off_is_bit_identical_to_the_flat_oracle() {
    // `shard: None` must leave the Policy::Smart path exactly the flat
    // balancer — same epoch reports, same stats, same energy bits.
    let platform = Platform::clustered_heterogeneous(4, 8);
    let profiles = mixed_profiles(48, 11, 400_000_000);

    let cfg = SmartBalanceConfig::default();
    assert!(cfg.shard.is_none(), "default config must not shard");
    let mut via_policy = Policy::Smart.build(&platform, Some(&cfg));
    let mut oracle = SmartBalance::with_config(&platform, cfg.clone());

    let a = run_fingerprinted(&platform, &profiles, via_policy.as_mut(), 10);
    let b = run_fingerprinted(&platform, &profiles, &mut oracle, 10);
    assert_eq!(a.0, b.0, "per-epoch reports diverged from the flat oracle");
    assert_eq!(a.1, b.1, "final stats diverged from the flat oracle");
    assert_eq!(a.2, b.2, "energy bits diverged from the flat oracle");
}

#[test]
fn sharding_on_policy_dispatch_matches_direct_construction() {
    let platform = Platform::clustered_heterogeneous(4, 8);
    let profiles = mixed_profiles(48, 13, 400_000_000);

    let cfg = SmartBalanceConfig {
        shard: Some(ShardConfig::default()),
        ..SmartBalanceConfig::default()
    };
    let mut via_policy = Policy::Smart.build(&platform, Some(&cfg));
    assert_eq!(via_policy.name(), "smartbalance-sharded");
    let mut direct = ShardedBalancer::with_config(&platform, cfg.clone());

    let a = run_fingerprinted(&platform, &profiles, via_policy.as_mut(), 10);
    let b = run_fingerprinted(&platform, &profiles, &mut direct, 10);
    assert_eq!(a.0, b.0, "policy-built sharded run diverged from direct");
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

#[test]
fn offline_cores_are_honored_in_every_cluster_shard() {
    // Take down one core in cluster 0, the whole of cluster 1, and one
    // core in cluster 2: the sharded balancer must never place or
    // migrate a task onto any of them, in any shard, on any epoch.
    let platform = Platform::clustered_heterogeneous(4, 4);
    let mut sys = System::new(platform.clone(), SystemConfig::default());
    spawn_all(&mut sys, &mixed_profiles(24, 17, u64::MAX / 64));

    let offline: Vec<usize> = vec![2, 4, 5, 6, 7, 9];
    for &c in &offline {
        sys.set_core_online(CoreId(c), false);
    }

    let mut policy = ShardedBalancer::new(&platform);
    for _ in 0..6 {
        sys.run_epoch(&mut policy);
        for t in sys.tasks() {
            assert!(
                !offline.contains(&t.core().0),
                "task placed on offline core {}",
                t.core().0
            );
        }
    }
    // The balancer must respect the mask up front, not rely on the
    // kernel rejecting bad migrations after the fact.
    let stats = sys.stats();
    assert_eq!(
        stats.migration_totals.offline_core, 0,
        "balancer requested migrations onto offline cores"
    );

    // Bring cluster 1 back; the shards must pick it up again.
    for c in [4, 5, 6, 7] {
        sys.set_core_online(CoreId(c), true);
    }
    for _ in 0..6 {
        sys.run_epoch(&mut policy);
        for t in sys.tasks() {
            assert!(
                t.core().0 != 2 && t.core().0 != 9,
                "still-offline core used"
            );
        }
    }
    assert_eq!(sys.stats().migration_totals.offline_core, 0);
}

#[test]
fn shard_worker_count_never_changes_results() {
    // 1 shard worker vs 4 must produce byte-identical canonicalized
    // suite reports: worker count is an execution detail, not an input.
    let platform = Platform::clustered_heterogeneous(4, 4);
    let spec = ExperimentSpec::new(
        "shard-workers",
        platform,
        mixed_profiles(24, 19, 300_000_000),
    )
    .with_max_epochs(40);

    let report_for = |workers: usize| {
        let mut suite = ExperimentSuite::new().with_workers(1);
        suite.push_with_shard(
            spec.clone(),
            Policy::Smart,
            ShardConfig {
                workers,
                ..ShardConfig::default()
            },
        );
        let report = suite.run().canonicalized();
        serde_json::to_string(&report).expect("suite report serializes")
    };

    let one = report_for(1);
    let four = report_for(4);
    assert_eq!(one, four, "shard worker count changed the suite report");
}
