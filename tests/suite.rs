//! Integration tests for the parallel experiment-suite engine: the
//! parallel fan-out must be an *observationally invisible* optimization
//! — bit-identical to running the same jobs serially — while still
//! delivering a real wall-clock speedup on multicore hosts.

use archsim::Platform;
use smartbalance::{
    run_experiment_with, ExperimentSpec, ExperimentSuite, Policy, RunOptions, SmartBalanceConfig,
};
use workloads::{ImbConfig, Level};

/// A small but non-trivial spec: two IMB profiles on the big.LITTLE
/// platform (the one every policy, including GTS and IKS, supports).
fn spec(name: &str, scale: f64) -> ExperimentSpec {
    let profiles = vec![
        ImbConfig::new(Level::High, Level::Low)
            .profile()
            .scaled(scale),
        ImbConfig::new(Level::Medium, Level::Low)
            .profile()
            .scaled(scale),
    ];
    ExperimentSpec::new(name, Platform::octa_big_little(), profiles)
}

/// Eight-plus jobs mixing policies, experiments and a pinned config —
/// the workload the acceptance criteria are checked against.
fn build_suite(workers: usize) -> ExperimentSuite {
    let mut suite = ExperimentSuite::new().with_workers(workers);
    for (i, policy) in [Policy::Vanilla, Policy::Gts, Policy::Iks, Policy::Smart]
        .into_iter()
        .enumerate()
    {
        suite.push(spec(&format!("w{i}"), 0.08), policy);
    }
    for i in 0..3 {
        suite.push(spec(&format!("w{i}"), 0.08), Policy::Smart);
    }
    // One job whose config pins its own annealer seed.
    let pinned = spec("pinned", 0.08).with_policy_config(SmartBalanceConfig {
        anneal_seed: Some(42),
        ..SmartBalanceConfig::default()
    });
    suite.push(pinned, Policy::Smart);
    suite
}

/// Serializes every job result; equality of these strings is
/// bit-equality of every f64 in them (Rust's float `Display` is
/// shortest-roundtrip, so distinct bits print distinctly).
fn fingerprint(report: &smartbalance::SuiteReport) -> Vec<String> {
    report
        .jobs
        .iter()
        .map(|j| serde_json::to_string(&j.result).expect("serialize"))
        .collect()
}

#[test]
fn parallel_suite_matches_serial_run_experiment() {
    let suite = build_suite(4);
    assert!(suite.jobs().len() >= 8, "acceptance: at least 8 jobs");
    let report = suite.run();

    // Re-run every job serially through the plain runner entry point,
    // building the balancer exactly as the suite did.
    for (parallel, job) in report.jobs.iter().zip(suite.jobs()) {
        let mut balancer = job.build_balancer();
        let serial = run_experiment_with(&job.spec, balancer.as_mut(), RunOptions::new()).result;
        assert_eq!(
            serde_json::to_string(&serial).expect("serialize"),
            serde_json::to_string(&parallel.result).expect("serialize"),
            "job {} ({:?}) diverged from its serial rerun",
            parallel.job_index,
            parallel.policy,
        );
    }
}

#[test]
fn rerunning_the_suite_is_bit_identical_and_faster_in_parallel() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let serial_report = build_suite(1).run();
    let parallel_report = build_suite(cores).run();

    // Determinism: same jobs, different worker counts and scheduling
    // orders, bit-identical measurements.
    assert_eq!(fingerprint(&serial_report), fingerprint(&parallel_report));

    // And a third run with an odd pool size for good measure.
    assert_eq!(
        fingerprint(&serial_report),
        fingerprint(&build_suite(3).run())
    );

    // Speedup: on a multicore host the 8-job fan-out must beat the
    // one-worker run on wall-clock.
    if cores >= 2 {
        assert!(
            parallel_report.wall_s < serial_report.wall_s,
            "no speedup: {} workers took {:.3}s vs {:.3}s serial",
            cores,
            parallel_report.wall_s,
            serial_report.wall_s,
        );
        assert!(parallel_report.speedup() > 1.0);
    }
    assert!(serial_report.throughput_jobs_per_s() > 0.0);
}

#[test]
fn identical_runs_produce_byte_identical_canonical_reports() {
    // The smartlint D1 rule exists to protect exactly this guarantee:
    // no HashMap iteration order may leak into results. Two fresh runs
    // of the same suite must serialize — wall-clock fields aside — to
    // the same bytes, whole report included (job order, gains, traces).
    let first = build_suite(2).run().canonicalized();
    let second = build_suite(4).run().canonicalized();
    assert_eq!(
        serde_json::to_string(&first).expect("serialize"),
        serde_json::to_string(&second).expect("serialize"),
        "canonicalized SuiteReport JSON differs between identical runs"
    );
}

#[test]
#[allow(clippy::float_cmp)] // the roundtrip must preserve the exact bits
fn suite_report_round_trips_through_json() {
    let mut suite = ExperimentSuite::new().with_workers(2);
    suite.push(spec("w0", 0.01), Policy::Vanilla);
    suite.push(spec("w0", 0.01), Policy::Smart);
    let report = suite.run();

    let json = serde_json::to_string(&report).expect("serialize report");
    let back: smartbalance::SuiteReport = serde_json::from_str(&json).expect("deserialize report");
    assert_eq!(fingerprint(&report), fingerprint(&back));
    assert_eq!(back.workers, report.workers);
    assert_eq!(
        back.gains_vs(Policy::Vanilla)[0].gain,
        report.gains_vs(Policy::Vanilla)[0].gain,
    );
}
