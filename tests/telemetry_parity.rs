//! Parity tests for the closed-loop telemetry layer: observability is
//! strictly *write-only* from the simulation's point of view, so a run
//! with a telemetry hub attached must be observationally
//! indistinguishable — bit-for-bit — from the same run without one,
//! and the telemetry output itself must be deterministic across reruns
//! and across suite worker counts.
//!
//! Same fingerprint technique as `tests/hotpath_parity.rs`: string
//! equality of serde_json output implies bit equality of every `f64`
//! inside (shortest-roundtrip formatting).

use archsim::Platform;
use kernelsim::{LoadBalancer, System, SystemConfig};
use smartbalance::{
    ExperimentSpec, ExperimentSuite, Policy, SmartBalance, SmartBalanceConfig, SuiteReport,
};
use telemetry::ObsCapture;
use workloads::SyntheticGenerator;

const TASKS: usize = 8;
const EPOCHS: u32 = 12;

/// Everything observable about one closed-loop run, plus what the
/// telemetry hub (if attached) saw.
struct RunTrace {
    /// serde_json fingerprint of every epoch's report, in order.
    fingerprints: Vec<String>,
    total_instructions: u64,
    total_energy_bits: u64,
    total_slices: u64,
    obs: Option<ObsCapture>,
}

/// Runs the reference SmartBalance scenario, optionally with a
/// telemetry hub attached to both the system and the policy.
fn run(observed: bool) -> RunTrace {
    let platform = Platform::quad_heterogeneous();
    let mut policy = SmartBalance::with_config(&platform, SmartBalanceConfig::default());
    let mut sys = System::new(platform, SystemConfig::default());
    let hub = if observed {
        let hub = telemetry::shared();
        sys.set_telemetry(hub.clone());
        policy.attach_telemetry(&hub);
        Some(hub)
    } else {
        None
    };
    let mut gen = SyntheticGenerator::new(0x0B5E);
    for i in 0..TASKS {
        sys.spawn(gen.profile(format!("w{i}"), 4, u64::MAX / 64, i % 2 == 0));
    }
    let mut fingerprints = Vec::new();
    for _ in 0..EPOCHS {
        let report = sys.run_epoch(&mut policy);
        fingerprints.push(serde_json::to_string(&report).expect("serialize report"));
    }
    RunTrace {
        fingerprints,
        total_instructions: sys.sensors().total_instructions(),
        total_energy_bits: sys.sensors().total_energy_j().to_bits(),
        total_slices: sys.total_slices(),
        obs: hub.map(|hub| hub.borrow().capture()),
    }
}

#[test]
fn telemetry_is_bit_transparent_to_the_simulation() {
    let plain = run(false);
    let observed = run(true);

    for (epoch, (a, b)) in plain
        .fingerprints
        .iter()
        .zip(observed.fingerprints.iter())
        .enumerate()
    {
        assert_eq!(a, b, "EpochReport for epoch {epoch} diverged");
    }
    assert_eq!(plain.total_instructions, observed.total_instructions);
    assert_eq!(
        plain.total_energy_bits, observed.total_energy_bits,
        "energy accounting must match to the last bit"
    );
    assert_eq!(plain.total_slices, observed.total_slices);

    // Transparency must not be vacuous: the hub has to have actually
    // watched the loop — one span per epoch, with the balancer-side
    // phases (sense/degrade/anneal) and the prediction audit populated.
    let obs = observed.obs.expect("observed run captures");
    assert!(plain.obs.is_none());
    assert_eq!(obs.summary.epochs, u64::from(EPOCHS));
    assert!(obs.summary.anneal_epochs > 0, "annealer epochs observed");
    assert!(
        obs.summary.prediction_samples > 0,
        "prediction audit resolved samples"
    );
    assert!(
        obs.summary.mean_abs_ips_error > 0.0,
        "audit measured a real error signal"
    );
    assert_eq!(obs.jsonl.lines().count(), EPOCHS as usize);
    assert!(obs.prometheus.contains("sb_anneal_epochs_total"));
    assert!(obs
        .prometheus
        .contains("sb_prediction_abs_rel_error_ips_count"));
}

#[test]
fn rerun_telemetry_output_is_byte_identical() {
    let a = run(true).obs.expect("captured");
    let b = run(true).obs.expect("captured");
    assert_eq!(a.jsonl, b.jsonl, "JSONL stream must be reproducible");
    assert_eq!(a.prometheus, b.prometheus);
    assert_eq!(
        serde_json::to_string(&a.summary).expect("serialize"),
        serde_json::to_string(&b.summary).expect("serialize"),
    );
}

/// Builds the observed suite: two experiments, each under Vanilla and
/// SmartBalance, all four jobs with telemetry attached.
fn observed_suite(workers: usize) -> SuiteReport {
    let mut gen = SyntheticGenerator::new(0x5EED);
    let mut specs = Vec::new();
    for name in ["alpha", "beta"] {
        let profiles = (0..4)
            .map(|i| gen.profile(format!("{name}{i}"), 3, 40_000_000, i % 2 == 0))
            .collect();
        specs.push(
            ExperimentSpec::new(name, Platform::quad_heterogeneous(), profiles)
                .with_max_epochs(200),
        );
    }
    let mut suite = ExperimentSuite::new().with_workers(workers);
    for spec in specs {
        suite.push_observed(spec.clone(), Policy::Vanilla);
        suite.push_observed(spec, Policy::Smart);
    }
    suite.run()
}

#[test]
fn observed_suite_is_worker_count_independent() {
    let two = observed_suite(2);
    let four = observed_suite(4);
    let two_canon = serde_json::to_string(&two.canonicalized()).expect("serialize");
    let four_canon = serde_json::to_string(&four.canonicalized()).expect("serialize");
    assert_eq!(
        two_canon, four_canon,
        "canonical suite reports (including ObsCaptures) must not depend on pool size"
    );
    // Non-vacuous: every job carries a populated observability bundle.
    for job in &two.jobs {
        let obs = job.obs.as_ref().expect("observed job captures");
        assert_eq!(obs.summary.epochs, job.result.epochs);
        assert!(!obs.jsonl.is_empty());
    }
    // SmartBalance jobs must have produced audit samples.
    assert!(two
        .jobs
        .iter()
        .filter(|j| j.policy == Policy::Smart)
        .all(|j| j
            .obs
            .as_ref()
            .is_some_and(|o| o.summary.prediction_samples > 0)));
}
