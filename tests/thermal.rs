//! Thermal-awareness integration tests: the ω-derating extension built
//! on the RC thermal tracker (paper hook: "ω_j ... can be tuned to
//! give preference to certain cores or core types").

use archsim::{CoreId, Platform, WorkloadCharacteristics};
use kernelsim::{System, SystemConfig};
use mcpat::{ThermalModel, AMBIENT_C};
use smartbalance::{SmartBalance, SmartBalanceConfig, ThermalConfig};
use workloads::WorkloadProfile;

fn hot_workload() -> Vec<WorkloadProfile> {
    (0..4)
        .map(|i| {
            WorkloadProfile::uniform(
                format!("hot{i}"),
                WorkloadCharacteristics::compute_bound(),
                u64::MAX / 8,
            )
        })
        .collect()
}

#[test]
fn thermal_tracker_follows_the_run() {
    let platform = Platform::quad_heterogeneous();
    let mut sys = System::new(platform.clone(), SystemConfig::default());
    for (i, p) in hot_workload().into_iter().enumerate() {
        sys.spawn_on(p, CoreId(i % 4));
    }
    let cfg = SmartBalanceConfig {
        thermal: Some(ThermalConfig::default()),
        ..SmartBalanceConfig::default()
    };
    let mut policy = SmartBalance::with_config(&platform, cfg);
    for _ in 0..10 {
        sys.run_epoch(&mut policy);
    }
    // Busy cores must be above ambient; the tracker is exposed.
    let mut any_warm = false;
    for c in platform.cores() {
        let t = policy.temperature_c(c).expect("thermal enabled");
        assert!(t >= AMBIENT_C - 1e-9);
        if t > AMBIENT_C + 2.0 {
            any_warm = true;
        }
    }
    assert!(any_warm, "sustained load must heat something up");
}

#[test]
fn thermal_weights_steer_load_off_a_hot_core() {
    // With an aggressive (low) thermal limit, the Huge core saturates
    // its budget quickly; a thermally-weighted balancer should use it
    // less than a thermally-blind one over a sustained run.
    let platform = Platform::quad_heterogeneous();
    let run = |thermal: Option<ThermalConfig>| {
        let mut sys = System::new(platform.clone(), SystemConfig::default());
        for (i, p) in hot_workload().into_iter().enumerate() {
            sys.spawn_on(p, CoreId(i % 4));
        }
        let cfg = SmartBalanceConfig {
            thermal,
            ..SmartBalanceConfig::default()
        };
        let mut policy = SmartBalance::with_config(&platform, cfg);
        for _ in 0..30 {
            sys.run_epoch(&mut policy);
        }
        sys.stats().per_core[0].busy_ns // Huge-core usage
    };
    let blind = run(None);
    let aware = run(Some(ThermalConfig {
        soft_limit_c: 45.0,
        hard_limit_c: 60.0,
    }));
    assert!(
        aware <= blind,
        "thermal derating must not increase hot-core usage: {aware} vs {blind}"
    );
}

#[test]
fn disabled_thermal_mode_reports_none() {
    let platform = Platform::quad_heterogeneous();
    let policy = SmartBalance::new(&platform);
    assert!(policy.temperature_c(CoreId(0)).is_none());
}

#[test]
fn rc_model_time_constant_behaviour() {
    // One epoch (60 ms) is a fraction of τ = 150 ms: temperature moves
    // ~33 % of the way to steady state.
    let platform = Platform::quad_heterogeneous();
    let mut t = ThermalModel::new(&platform);
    let steady = t.steady_state_c(CoreId(0), 8.62);
    let after_one = t.step(CoreId(0), 8.62, 60_000_000);
    let expected = AMBIENT_C + (steady - AMBIENT_C) * (1.0 - (-0.06f64 / 0.15).exp());
    assert!((after_one - expected).abs() < 1e-9);
}
