//! Offline stand-in for `criterion`.
//!
//! Implements the slice of criterion's API this workspace's benches
//! use (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`/`iter_batched`, `BenchmarkId`, the `criterion_group!`
//! / `criterion_main!` macros) over a plain wall-clock harness: each
//! benchmark is warmed up once, then timed in adaptive batches until
//! enough samples accumulate, and the mean per-iteration time is
//! printed. No statistics, plots, or CLI flags — just numbers.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup; sizing is irrelevant to this
/// harness, the variants exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark label of the form `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into one label.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// A label from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs closures and records elapsed time.
pub struct Bencher {
    /// Total measured time across all timed iterations.
    elapsed: Duration,
    /// Number of timed iterations.
    iters: u64,
    /// Measurement budget per benchmark.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget,
        }
    }

    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        while self.elapsed < self.budget {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` on fresh inputs from `setup`; only `routine` is
    /// on the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up, untimed
        while self.elapsed < self.budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            println!("{label:<40} (no timed iterations)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() as f64 / self.iters as f64;
        println!(
            "{label:<40} time: {:>12} /iter  ({} iters)",
            format_ns(per_iter),
            self.iters
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The top-level harness handle passed to benchmark functions.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// CLI parsing is not supported; accepts and ignores the flags so
    /// `cargo bench` extra arguments don't break the binaries.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Overrides the per-benchmark measurement budget.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.budget = t;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        b.report(&id.to_string());
    }
}

/// A set of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample budget for this group (interpreted as a
    /// measurement-time scale; sample counts are not used directly).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.budget = t;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
    }

    /// Ends the group (prints nothing; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups, mirroring criterion's
/// macro (benches set `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher::new(Duration::from_millis(5));
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        assert!(b.iters > 0);
        assert_eq!(calls, b.iters + 1); // +1 warm-up call
    }

    #[test]
    fn benchmark_id_formats_as_path() {
        let id = BenchmarkId::new("epoch", "Smart");
        assert_eq!(id.to_string(), "epoch/Smart");
    }
}
