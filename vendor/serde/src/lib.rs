//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate
//! provides the subset of serde this workspace relies on, implemented
//! over an explicit [`Value`] tree instead of serde's visitor core:
//!
//! - [`Serialize`] / [`Deserialize`] traits with impls for the std
//!   types the workspace serializes (integers, floats, `bool`,
//!   `String`, `Option`, `Vec`, arrays, tuples, `BTreeMap`),
//! - re-exported `#[derive(Serialize, Deserialize)]` macros (see the
//!   vendored `serde_derive`),
//! - the [`Value`] data model consumed by the vendored `serde_json`.
//!
//! The representation choices (newtype transparency, externally tagged
//! enums, `Option` ↔ `null`) match serde's defaults so swapping the
//! real crates back in later is a manifest-only change.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A serialization error (also used for deserialization mismatches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// The self-describing data model every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (used when the value exceeds `i64::MAX` or
    /// the source type is unsigned).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered key → value map (insertion order preserved).
    Map(Vec<(String, Value)>),
}

/// Shared `Null` for lookups of missing map keys.
const NULL: Value = Value::Null;

impl Value {
    /// The value under `key`, or `Null` when the key is absent (which
    /// deserializes cleanly into `Option` fields and errors for
    /// required ones).
    pub fn map_get(&self, key: &str) -> &Value {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map_or(&NULL, |(_, v)| v),
            _ => &NULL,
        }
    }

    /// The `index`-th element of an array value.
    pub fn seq_get(&self, index: usize) -> Result<&Value, Error> {
        match self {
            Value::Array(items) => items
                .get(index)
                .ok_or_else(|| Error::new(format!("array too short: no index {index}"))),
            other => Err(Error::new(format!("expected array, got {other:?}"))),
        }
    }

    /// For externally tagged enums: a single-entry map viewed as
    /// `(tag, inner)`.
    pub fn as_tag_pair(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Map(entries) if entries.len() == 1 => {
                Some((entries[0].0.as_str(), &entries[0].1))
            }
            _ => None,
        }
    }
}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn serialize_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::new("unsigned value out of range"))?,
                    other => return Err(Error::new(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n: u64 = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) => u64::try_from(*n)
                        .map_err(|_| Error::new("negative value for unsigned type"))?,
                    other => return Err(Error::new(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}
impl Deserialize for usize {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        u64::deserialize_value(v)
            .and_then(|n| usize::try_from(n).map_err(|_| Error::new("usize out of range")))
    }
}

impl Serialize for isize {
    fn serialize_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}
impl Deserialize for isize {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        i64::deserialize_value(v)
            .and_then(|n| isize::try_from(n).map_err(|_| Error::new("isize out of range")))
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    other => Err(Error::new(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().expect("length checked"))
            }
            other => Err(Error::new(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(inner) => inner.serialize_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::new(format!("expected {N} elements, got {}", items.len())))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                Ok(($($t::deserialize_value(v.seq_get($idx)?)?,)+))
            }
        }
    )+};
}
impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::new(format!("expected array, got {other:?}"))),
        }
    }
}

/// Map keys must render as strings in JSON; integers are formatted the
/// way `serde_json` formats integer keys.
fn key_to_string(v: &Value) -> Result<String, Error> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        Value::Int(n) => Ok(n.to_string()),
        Value::UInt(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error::new(format!("unsupported map key {other:?}"))),
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    // Try the string itself, then numeric reinterpretations — covers
    // both string keys and integer/newtype keys.
    if let Ok(k) = K::deserialize_value(&Value::Str(s.to_owned())) {
        return Ok(k);
    }
    if let Ok(n) = s.parse::<u64>() {
        if let Ok(k) = K::deserialize_value(&Value::UInt(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::deserialize_value(&Value::Int(n)) {
            return Ok(k);
        }
    }
    Err(Error::new(format!("cannot deserialize map key from {s:?}")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    let key = key_to_string(&k.serialize_value())
                        .expect("map keys must serialize to strings or integers");
                    (key, v.serialize_value())
                })
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::deserialize_value(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected map, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(42u64.serialize_value(), Value::UInt(42));
        assert_eq!(u64::deserialize_value(&Value::UInt(42)).expect("u64"), 42);
        assert_eq!((-3i64).serialize_value(), Value::Int(-3));
        assert_eq!(f64::deserialize_value(&Value::Int(2)).expect("f64"), 2.0);
        assert_eq!(
            Option::<u32>::deserialize_value(&Value::Null).expect("opt"),
            None
        );
        assert!(u32::deserialize_value(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.5f64, 2.5];
        let back = Vec::<f64>::deserialize_value(&v.serialize_value()).expect("vec");
        assert_eq!(back, v);

        let arr = [1u32, 2, 3];
        let back = <[u32; 3]>::deserialize_value(&arr.serialize_value()).expect("arr");
        assert_eq!(back, arr);
        assert!(<[u32; 2]>::deserialize_value(&arr.serialize_value()).is_err());

        let pair = (1u64, 2.5f64);
        let back = <(u64, f64)>::deserialize_value(&pair.serialize_value()).expect("tuple");
        assert_eq!(back, pair);
    }

    #[test]
    fn missing_map_keys_read_as_null() {
        let m = Value::Map(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(m.map_get("a"), &Value::UInt(1));
        assert_eq!(m.map_get("b"), &Value::Null);
    }
}
