//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! macros against the vendored mini-serde data model (`serde::Value`)
//! without `syn`/`quote`: the input item is parsed by walking the raw
//! `TokenStream` and the generated impl is assembled as a source string.
//!
//! Supported shapes (everything this workspace derives on):
//! - structs with named fields,
//! - tuple structs (newtypes serialize transparently, like serde),
//! - unit structs,
//! - enums with unit, tuple and struct variants (externally tagged,
//!   matching serde's default representation).
//!
//! `#[serde(...)]` attributes and generic parameters are not supported;
//! the macro panics with a clear message if it meets one.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What kind of item the derive is attached to.
enum Item {
    /// `struct Name { field, ... }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct Name(T0, T1, ...);` with the given arity.
    TupleStruct { name: String, arity: usize },
    /// `struct Name;`
    UnitStruct { name: String },
    /// `enum Name { Variant, ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// One enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "m.push((String::from(\"{f}\"), \
                         ::serde::Serialize::serialize_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_value(&self) -> ::serde::Value {{\n\
                 let mut m: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\n\
                 ::serde::Value::Map(m)\n}}\n}}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let expr = if *arity == 1 {
                // Newtype: transparent, like serde.
                "::serde::Serialize::serialize_value(&self.0)".to_owned()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_value(&self) -> ::serde::Value {{ {expr} }}\n}}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(String::from(\"{vn}\")),\n"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::serialize_value(f0)".to_owned()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![\
                                 (String::from(\"{vn}\"), {inner})]),\n",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from(\"{f}\"), \
                                         ::serde::Serialize::serialize_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![\
                                 (String::from(\"{vn}\"), \
                                 ::serde::Value::Map(vec![{}]))]),\n",
                                pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n}}\n}}"
            )
        }
    };
    body.parse().expect("serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::deserialize_value(v.map_get(\"{f}\"))?")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize_value(v: &::serde::Value) \
                 -> Result<Self, ::serde::Error> {{\n\
                 Ok({name} {{ {} }})\n}}\n}}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let expr = if *arity == 1 {
                format!("{name}(::serde::Deserialize::deserialize_value(v)?)")
            } else {
                let inits: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::deserialize_value(v.seq_get({i})?)?"))
                    .collect();
                format!("{name}({})", inits.join(", "))
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize_value(v: &::serde::Value) \
                 -> Result<Self, ::serde::Error> {{ Ok({expr}) }}\n}}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(_v: &::serde::Value) \
             -> Result<Self, ::serde::Error> {{ Ok({name}) }}\n}}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),\n", v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(n) => {
                            let expr = if *n == 1 {
                                format!(
                                    "{name}::{vn}(\
                                     ::serde::Deserialize::deserialize_value(inner)?)"
                                )
                            } else {
                                let inits: Vec<String> = (0..*n)
                                    .map(|i| {
                                        format!(
                                            "::serde::Deserialize::deserialize_value(\
                                             inner.seq_get({i})?)?"
                                        )
                                    })
                                    .collect();
                                format!("{name}::{vn}({})", inits.join(", "))
                            };
                            Some(format!("\"{vn}\" => return Ok({expr}),\n"))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::deserialize_value(\
                                         inner.map_get(\"{f}\"))?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => return Ok({name}::{vn} {{ {} }}),\n",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize_value(v: &::serde::Value) \
                 -> Result<Self, ::serde::Error> {{\n\
                 if let ::serde::Value::Str(s) = v {{\n\
                 match s.as_str() {{\n{unit_arms}_ => {{}}\n}}\n}}\n\
                 if let Some((tag, inner)) = v.as_tag_pair() {{\n\
                 match tag {{\n{tagged_arms}_ => {{}}\n}}\n}}\n\
                 Err(::serde::Error::new(concat!(\"invalid {name} variant\")))\n\
                 }}\n}}"
            )
        }
    };
    body.parse().expect("deserialize impl parses")
}

// ---------------------------------------------------------------------
// Token-level item parsing (no syn)
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize): generic type `{name}` is not supported");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            _ => Item::UnitStruct { name },
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("derive(Serialize/Deserialize): unsupported item kind `{other}`"),
    }
}

/// Advances `i` past any `#[...]` attribute sequences (doc comments
/// included — they arrive as `#[doc = ...]`).
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1; // '#'
        if matches!(tokens.get(*i), Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1; // the [...] group
        }
    }
}

/// Advances `i` past `pub`, `pub(crate)`, `pub(super)` etc.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Extracts field names from the body of a named-field struct/variant.
/// Types are never inspected: the generated code lets inference pick
/// the right `Deserialize` impl from the struct definition itself.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // Expect ':', then skip the type up to the next top-level ','.
        assert!(
            matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "expected `:` after field `{}`",
            fields.last().expect("just pushed")
        );
        i += 1;
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Skips a type expression: everything until the next `,` at zero
/// angle-bracket depth (commas inside `(...)`/`[...]` are nested token
/// groups, so only `<...>` needs explicit tracking).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    // A trailing comma does not add a field.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

/// Parses the variants of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let k = VariantKind::Struct(parse_named_fields(g.stream()));
                i += 1;
                k
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let k = VariantKind::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                k
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            while i < tokens.len()
                && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}
