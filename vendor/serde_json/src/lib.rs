//! Offline stand-in for `serde_json`.
//!
//! Prints and parses JSON text over the vendored mini-serde [`Value`]
//! tree. Output formatting follows serde_json's conventions (compact
//! `,`/`:` separators, two-space pretty indent, non-finite floats as
//! `null`) and numbers are printed with Rust's shortest-roundtrip
//! float formatting, so `to_string` → `from_str` preserves float bits.

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// A JSON serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some("  "), 0);
    Ok(out)
}

/// Converts `value` into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::deserialize_value(value)?)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::deserialize_value(&value)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, value, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

/// JSON has no NaN/Infinity literals; serde_json emits `null` for them.
fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        // Rust's `Display` for f64 is shortest-roundtrip, so the bits
        // survive a print → parse cycle. Integral floats print without
        // a fraction ("2"); the numeric deserializers accept that.
        out.push_str(&x.to_string());
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_map(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs in one slice operation.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape character {:?}",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_print_and_parse() {
        assert_eq!(to_string(&true).expect("json"), "true");
        assert_eq!(to_string(&-7i64).expect("json"), "-7");
        assert_eq!(to_string(&1.5f64).expect("json"), "1.5");
        assert_eq!(from_str::<f64>("1.5e2").expect("parse"), 150.0);
        assert_eq!(from_str::<i64>("-12").expect("parse"), -12);
        assert_eq!(from_str::<Option<u32>>("null").expect("parse"), None);
    }

    #[test]
    fn float_bits_survive_roundtrip() {
        for &x in &[0.1f64, 1.0 / 3.0, f64::MIN_POSITIVE, 6.02214076e23, -0.25] {
            let text = to_string(&x).expect("json");
            let back: f64 = from_str(&text).expect("parse");
            assert_eq!(back.to_bits(), x.to_bits(), "roundtrip of {x}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nquote\"back\\slash\ttab\u{1}ü🦀";
        let text = to_string(&String::from(s)).expect("json");
        let back: String = from_str(&text).expect("parse");
        assert_eq!(back, s);
        // Surrogate-pair escape form parses too.
        let back: String = from_str("\"\\ud83e\\udd80\"").expect("parse");
        assert_eq!(back, "🦀");
    }

    #[test]
    fn containers_pretty_print() {
        let v = vec![1u32, 2];
        assert_eq!(to_string(&v).expect("json"), "[1,2]");
        assert_eq!(to_string_pretty(&v).expect("json"), "[\n  1,\n  2\n]");
        let m = Value::Map(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(to_string(&m).expect("json"), "{\"a\":1}");
        assert_eq!(to_string_pretty(&m).expect("json"), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }
}
